"""Tests for the online answering procedure (Sec 3.3)."""


from repro.kb.paths import PredicatePath

from tests.conftest import pick_entity


class TestOnlineAnswering:
    def test_seen_surface_answered(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"what is the population of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")
        assert result.predicate == PredicatePath.single("population")

    def test_noncanonical_surface_answered(self, suite, kbqa_fb):
        """The keyword-defeating paraphrase the paper opens with."""
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"how many people are there in {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_unseen_surface_refused(self, suite, kbqa_fb):
        """Held-out paraphrases have no learned template: KBQA refuses
        rather than guessing (the paper's precision mechanism)."""
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"what is the head count of {city.name}?")
        assert not result.answered

    def test_unknown_entity_refused(self, kbqa_fb):
        result = kbqa_fb.answer("what is the population of gotham city?")
        assert not result.answered
        assert not result.found_predicate

    def test_spouse_via_expanded_predicate(self, suite, kbqa_fb):
        person = pick_entity(suite.world, "person", "spouse")
        result = kbqa_fb.answer(f"who is {person.name} married to?")
        assert result.answered
        assert result.value in suite.world.gold_values(person.node, "spouse")
        assert not result.predicate.is_direct

    def test_multi_valued_answer_set(self, suite, kbqa_fb):
        band = pick_entity(suite.world, "band", "members")
        result = kbqa_fb.answer(f"who are the members of {band.name}?")
        assert result.answered
        assert set(result.values) == suite.world.gold_values(band.node, "members")

    def test_entity_missing_fact_not_answered(self, suite, kbqa_fb):
        person = next(
            p for p in suite.world.of_type("person") if not p.get_fact("spouse")
        )
        result = kbqa_fb.answer(f"who is the wife of {person.name}?")
        assert not result.answered
        # the template itself is known: a predicate was found (#pro)
        assert result.found_predicate

    def test_nonbfq_refused(self, kbqa_fb):
        result = kbqa_fb.answer("which city has the largest population?")
        assert not result.answered

    def test_chitchat_refused(self, kbqa_fb):
        result = kbqa_fb.answer("what should i eat tonight?")
        assert not result.answered

    def test_result_carries_explanation(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"what is the population of {city.name}?")
        assert result.entity == city.node
        assert result.template == "what is the population of $city ?"
        assert result.score > 0.0
        assert result.candidates

    def test_ambiguous_name_resolved_by_context(self, suite, kbqa_fb):
        """A company/food name in a company question must resolve to the
        company reading (the paper's apple example)."""
        collision = None
        for name, nodes in suite.world.ambiguous_names().items():
            types = {suite.world.entity(n).etype for n in nodes}
            if "company" in types:
                collision = (name, nodes)
                break
        assert collision
        name, nodes = collision
        company = next(n for n in nodes if suite.world.entity(n).etype == "company")
        result = kbqa_fb.answer(f"who is the ceo of {name}?")
        assert result.answered
        assert result.entity == company
        assert result.value in suite.world.gold_values(company, "ceo")

    def test_dbpedia_system_answers_too(self, suite, kbqa_dbp):
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_dbp.answer(f"what is the population of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_values_sorted_deterministic(self, suite, kbqa_fb):
        band = pick_entity(suite.world, "band", "members")
        r1 = kbqa_fb.answer(f"who are the members of {band.name}?")
        r2 = kbqa_fb.answer(f"who are the members of {band.name}?")
        assert r1.values == r2.values == tuple(sorted(r1.values))


class TestAnswerManyDedup:
    """answer_many deduplicates repeated normalized keys within a batch:
    one cache miss (one Eq 7 evaluation) per unique key, input order and
    surface question text preserved."""

    def _counting_answerer(self, kbqa_fb, monkeypatch, cache_size=2048):
        from repro.core.online import OnlineAnswerer

        answerer = OnlineAnswerer(
            kbqa_fb.learn_result.kbview,
            kbqa_fb.learn_result.ner,
            kbqa_fb.conceptualizer,
            kbqa_fb.model,
            max_concepts=kbqa_fb.config.max_concepts_online,
            answer_cache_size=cache_size,
        )
        evaluations = []
        real = answerer._answer_tokens

        def counting(question, tokens):
            evaluations.append(question)
            return real(question, tokens)

        monkeypatch.setattr(answerer, "_answer_tokens", counting)
        return answerer, evaluations

    def test_one_evaluation_per_unique_key(self, suite, kbqa_fb, monkeypatch):
        answerer, evaluations = self._counting_answerer(kbqa_fb, monkeypatch)
        city = pick_entity(suite.world, "city", "population")
        q1 = f"what is the population of {city.name}?"
        q2 = f"who is the mayor of {city.name}?"
        results = answerer.answer_many([q1, q1, q2, q1, q2])
        assert len(evaluations) == 2
        assert [r.question for r in results] == [q1, q1, q2, q1, q2]
        assert results[0] == results[1] == results[3]

    def test_dedup_without_answer_cache(self, suite, kbqa_fb, monkeypatch):
        """Even with the answer cache disabled, a batch pays one evaluation
        per unique normalized key (the serving micro-batch property)."""
        answerer, evaluations = self._counting_answerer(
            kbqa_fb, monkeypatch, cache_size=0
        )
        city = pick_entity(suite.world, "city", "population")
        question = f"what is the population of {city.name}?"
        results = answerer.answer_many([question] * 6)
        assert len(evaluations) == 1
        assert len(results) == 6
        assert len(set(results)) == 1

    def test_surface_variants_share_one_evaluation(self, suite, kbqa_fb, monkeypatch):
        """Different surface forms with the same normalized key dedup, and
        each result carries its caller's phrasing."""
        answerer, evaluations = self._counting_answerer(kbqa_fb, monkeypatch)
        city = pick_entity(suite.world, "city", "population")
        plain = f"what is the population of {city.name}?"
        shouty = f"What  IS the population of {city.name}?"
        results = answerer.answer_many([plain, shouty])
        assert len(evaluations) == 1
        assert [r.question for r in results] == [plain, shouty]
        assert results[0].values == results[1].values

    def test_batch_equivalent_to_per_question_answer(self, suite, kbqa_fb):
        questions = []
        for entity in list(suite.world.of_type("city"))[:3]:
            questions.append(f"what is the population of {entity.name}?")
            questions.append(f"who is the mayor of {entity.name}?")
        batch = questions + questions  # duplicate the whole set
        kbqa_fb.answerer.clear_caches()
        from_batch = kbqa_fb.answer_many(batch)
        kbqa_fb.answerer.clear_caches()
        sequential = [kbqa_fb.answer(q) for q in batch]
        assert from_batch == sequential


class TestAnswerCacheGeneration:
    def test_result_computed_before_clear_is_not_cached_after_it(
        self, suite, kbqa_fb, monkeypatch
    ):
        """A clear_caches() racing an in-flight evaluation must win: the
        pre-clear result may be returned to its caller but must not be
        inserted into the cache, where it would outlive the invalidation."""
        from repro.core.online import OnlineAnswerer

        answerer = OnlineAnswerer(
            kbqa_fb.learn_result.kbview,
            kbqa_fb.learn_result.ner,
            kbqa_fb.conceptualizer,
            kbqa_fb.model,
            max_concepts=kbqa_fb.config.max_concepts_online,
        )
        city = pick_entity(suite.world, "city", "population")
        question = f"what is the population of {city.name}?"

        real = answerer._answer_tokens

        def racing(q, tokens):
            result = real(q, tokens)
            answerer.clear_caches()  # the "writer" invalidates mid-evaluation
            return result

        monkeypatch.setattr(answerer, "_answer_tokens", racing)
        first = answerer.answer(question)
        assert first.answered
        assert answerer.cache_info()["answer_cache_entries"] == 0  # not inserted

        # Without the race, the next answer evaluates fresh and caches.
        monkeypatch.setattr(answerer, "_answer_tokens", real)
        second = answerer.answer(question)
        assert second == first
        assert answerer.cache_info()["answer_cache_entries"] == 1


class TestModelSwap:
    """clear_caches(model_changed=True) / replace_model: a swapped model
    must not keep serving the old θ rankings (train-resume on a live
    answerer)."""

    @staticmethod
    def _fresh(kbqa_fb):
        from repro.core.online import OnlineAnswerer

        return OnlineAnswerer(
            kbqa_fb.learn_result.kbview,
            kbqa_fb.learn_result.ner,
            kbqa_fb.conceptualizer,
            kbqa_fb.model,
            max_concepts=kbqa_fb.config.max_concepts_online,
        )

    @staticmethod
    def _retrained_toward(kbqa_fb, path):
        """A 'retrained' model: every template now argmaxes ``path``."""
        from repro.core.model import TemplateModel

        retrained = TemplateModel()
        for template in kbqa_fb.model.templates():
            retrained.set_distribution(template, {str(path): 1.0}, 1.0)
        return retrained

    def test_retrain_then_answer_serves_new_rankings(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population", "area")
        pop_q = f"what is the population of {city.name}?"
        area_q = f"what is the area of {city.name}?"

        answerer = self._fresh(kbqa_fb)
        r_pop = answerer.answer(pop_q)
        r_area = answerer.answer(area_q)
        assert r_pop.answered and r_area.answered
        assert r_pop.values != r_area.values

        retrained = self._retrained_toward(kbqa_fb, r_area.predicate)
        answerer.model = retrained

        # A KB-mutation clear is NOT enough: the ranked θ arrays mirror the
        # model and legitimately survive it — so the stale rankings serve.
        answerer.clear_caches()
        assert answerer.answer(pop_q).values == r_pop.values

        # The model-swap clear drops them; the new model's rankings serve.
        answerer.clear_caches(model_changed=True)
        swapped = answerer.answer(pop_q)
        assert swapped.answered
        assert str(swapped.predicate) == str(r_area.predicate)
        assert swapped.values == r_area.values

    def test_replace_model_is_the_one_call_spelling(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population", "area")
        pop_q = f"what is the population of {city.name}?"
        area_q = f"what is the area of {city.name}?"

        answerer = self._fresh(kbqa_fb)
        r_pop = answerer.answer(pop_q)
        r_area = answerer.answer(area_q)
        assert r_pop.answered and r_area.answered

        answerer.replace_model(self._retrained_toward(kbqa_fb, r_area.predicate))
        assert answerer.answer(pop_q).values == r_area.values
        assert not answerer.fallback_enabled  # no index passed: lane off
