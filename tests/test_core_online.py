"""Tests for the online answering procedure (Sec 3.3)."""


from repro.kb.paths import PredicatePath

from tests.conftest import pick_entity


class TestOnlineAnswering:
    def test_seen_surface_answered(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"what is the population of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")
        assert result.predicate == PredicatePath.single("population")

    def test_noncanonical_surface_answered(self, suite, kbqa_fb):
        """The keyword-defeating paraphrase the paper opens with."""
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"how many people are there in {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_unseen_surface_refused(self, suite, kbqa_fb):
        """Held-out paraphrases have no learned template: KBQA refuses
        rather than guessing (the paper's precision mechanism)."""
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"what is the head count of {city.name}?")
        assert not result.answered

    def test_unknown_entity_refused(self, kbqa_fb):
        result = kbqa_fb.answer("what is the population of gotham city?")
        assert not result.answered
        assert not result.found_predicate

    def test_spouse_via_expanded_predicate(self, suite, kbqa_fb):
        person = pick_entity(suite.world, "person", "spouse")
        result = kbqa_fb.answer(f"who is {person.name} married to?")
        assert result.answered
        assert result.value in suite.world.gold_values(person.node, "spouse")
        assert not result.predicate.is_direct

    def test_multi_valued_answer_set(self, suite, kbqa_fb):
        band = pick_entity(suite.world, "band", "members")
        result = kbqa_fb.answer(f"who are the members of {band.name}?")
        assert result.answered
        assert set(result.values) == suite.world.gold_values(band.node, "members")

    def test_entity_missing_fact_not_answered(self, suite, kbqa_fb):
        person = next(
            p for p in suite.world.of_type("person") if not p.get_fact("spouse")
        )
        result = kbqa_fb.answer(f"who is the wife of {person.name}?")
        assert not result.answered
        # the template itself is known: a predicate was found (#pro)
        assert result.found_predicate

    def test_nonbfq_refused(self, kbqa_fb):
        result = kbqa_fb.answer("which city has the largest population?")
        assert not result.answered

    def test_chitchat_refused(self, kbqa_fb):
        result = kbqa_fb.answer("what should i eat tonight?")
        assert not result.answered

    def test_result_carries_explanation(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_fb.answer(f"what is the population of {city.name}?")
        assert result.entity == city.node
        assert result.template == "what is the population of $city ?"
        assert result.score > 0.0
        assert result.candidates

    def test_ambiguous_name_resolved_by_context(self, suite, kbqa_fb):
        """A company/food name in a company question must resolve to the
        company reading (the paper's apple example)."""
        collision = None
        for name, nodes in suite.world.ambiguous_names().items():
            types = {suite.world.entity(n).etype for n in nodes}
            if "company" in types:
                collision = (name, nodes)
                break
        assert collision
        name, nodes = collision
        company = next(n for n in nodes if suite.world.entity(n).etype == "company")
        result = kbqa_fb.answer(f"who is the ceo of {name}?")
        assert result.answered
        assert result.entity == company
        assert result.value in suite.world.gold_values(company, "ceo")

    def test_dbpedia_system_answers_too(self, suite, kbqa_dbp):
        city = pick_entity(suite.world, "city", "population")
        result = kbqa_dbp.answer(f"what is the population of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_values_sorted_deterministic(self, suite, kbqa_fb):
        band = pick_entity(suite.world, "band", "members")
        r1 = kbqa_fb.answer(f"who are the members of {band.name}?")
        r2 = kbqa_fb.answer(f"who are the members of {band.name}?")
        assert r1.values == r2.values == tuple(sorted(r1.values))
