"""Tests for predicate paths and traversal."""

import pytest

from repro.kb.paths import PredicatePath, follow, paths_between
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


@pytest.fixture
def figure1() -> TripleStore:
    """Figure 1: spouse runs through marriage -> person -> name."""
    kb = TripleStore()
    kb.add("a", "name", make_literal("barack obama"))
    kb.add("a", "dob", make_literal("1961"))
    kb.add("a", "marriage", "b")
    kb.add("b", "person", "c")
    kb.add("b", "date", make_literal("1992"))
    kb.add("c", "name", make_literal("michelle obama"))
    kb.add("c", "dob", make_literal("1964"))
    return kb


class TestPredicatePath:
    def test_empty_path_rejected(self):
        with pytest.raises(ValueError):
            PredicatePath(())

    def test_single(self):
        path = PredicatePath.single("dob")
        assert path.is_direct
        assert len(path) == 1

    def test_str_and_parse_roundtrip(self):
        path = PredicatePath(("marriage", "person", "name"))
        assert PredicatePath.parse(str(path)) == path

    def test_parse_rejects_malformed(self):
        with pytest.raises(ValueError):
            PredicatePath.parse("a->->b")

    def test_extend(self):
        path = PredicatePath.single("marriage").extend("person").extend("name")
        assert path.predicates == ("marriage", "person", "name")
        assert path.last == "name"
        assert not path.is_direct

    def test_paths_are_hashable_values(self):
        a = PredicatePath(("x", "y"))
        b = PredicatePath(("x", "y"))
        assert a == b
        assert len({a, b}) == 1

    def test_iteration(self):
        assert list(PredicatePath(("a", "b"))) == ["a", "b"]


class TestFollow:
    def test_direct_hop(self, figure1):
        assert follow(figure1, "a", PredicatePath.single("dob")) == {make_literal("1961")}

    def test_spouse_path(self, figure1):
        """The paper's Sec 6.1 example: V(Obama, marriage->person->name)."""
        path = PredicatePath(("marriage", "person", "name"))
        assert follow(figure1, "a", path) == {make_literal("michelle obama")}

    def test_meaningless_path_still_traverses(self, figure1):
        path = PredicatePath(("marriage", "person", "dob"))
        assert follow(figure1, "a", path) == {make_literal("1964")}

    def test_dead_end_returns_empty(self, figure1):
        path = PredicatePath(("marriage", "nonexistent"))
        assert follow(figure1, "a", path) == set()

    def test_unknown_subject(self, figure1):
        assert follow(figure1, "ghost", PredicatePath.single("dob")) == set()


class TestPathsBetween:
    def test_finds_direct(self, figure1):
        found = paths_between(figure1, "a", make_literal("1961"), max_length=3)
        assert PredicatePath.single("dob") in found

    def test_finds_multi_hop(self, figure1):
        found = paths_between(figure1, "a", make_literal("michelle obama"), max_length=3)
        assert PredicatePath(("marriage", "person", "name")) in found

    def test_respects_length_limit(self, figure1):
        found = paths_between(figure1, "a", make_literal("michelle obama"), max_length=2)
        assert found == set()

    def test_zero_budget(self, figure1):
        assert paths_between(figure1, "a", make_literal("1961"), max_length=0) == set()

    def test_multiple_paths_to_same_value(self):
        kb = TripleStore()
        kb.add("s", "p1", make_literal("v"))
        kb.add("s", "p2", make_literal("v"))
        found = paths_between(kb, "s", make_literal("v"), max_length=1)
        assert found == {PredicatePath.single("p1"), PredicatePath.single("p2")}

    def test_agrees_with_networkx_reference(self):
        """Cross-check path enumeration against networkx on a random graph."""
        import itertools

        import networkx as nx

        from repro.utils.rng import SeedStream

        rng = SeedStream(3).substream("pathcheck").rng()
        kb = TripleStore()
        graph = nx.MultiDiGraph()
        nodes = [f"n{i}" for i in range(8)]
        predicates = ["p", "q", "r"]
        for _ in range(20):
            s, o = rng.choice(nodes), rng.choice(nodes)
            if s == o:
                continue
            p = rng.choice(predicates)
            kb.add(s, p, o)
            graph.add_edge(s, o, key=p)

        source, target = "n0", "n1"
        expected = set()
        for length in (1, 2, 3):
            for path_nodes in nx.all_simple_paths(graph, source, target, cutoff=length):
                if len(path_nodes) - 1 > length:
                    continue
                edge_options = [
                    list(graph[u][v]) for u, v in zip(path_nodes, path_nodes[1:])
                ]
                for combo in itertools.product(*edge_options):
                    expected.add(PredicatePath(tuple(combo)))
        found = paths_between(kb, source, target, max_length=3)
        # paths_between also walks cyclic (non-simple) routes; every simple
        # path must be found.
        assert expected <= found
