"""Chaos suite: crash-safety contracts under injected faults.

The failure model this PR adds, exercised end to end through the
`repro.exec.faults` harness (``KBQA_FAULTS``):

* a SIGKILL'd **pool worker** is absorbed — :meth:`ExecutorPool.run`, the
  expansion round loop and the serving batch loop respawn fresh workers and
  re-dispatch, with *byte-identical* output to a serial run;
* a SIGKILL'd ``--procs`` **replica** is reaped by the parent supervisor
  and replaced by a freshly forked child that catches up from the op log
  *before* binding its socket;
* requests carry **deadlines** (``DeadlineExceeded`` / HTTP 504) and the
  HTTP front serves **degraded** answer-cache hits instead of 503s when
  the evaluation backend is down;
* ``kbqa-*`` shared-memory segments orphaned by killed processes are
  decidable (pid in the name) and swept at pool starts, teardown and via
  ``kbqa shm-gc``.

Real kills, real forks, real sockets — the only scripted parts are the
fault points themselves, which fire deterministically (``times``/``after``
per process, ``once=<token file>`` across processes).
"""

from __future__ import annotations

import asyncio
import json
import multiprocessing
import os
import signal
import time
import urllib.error
import urllib.request
from concurrent.futures import BrokenExecutor
from multiprocessing import resource_tracker, shared_memory

import pytest

from repro.core.online import AnswerResult
from repro.core.system import KBQA
from repro.data.compile import compile_freebase_like
from repro.exec.faults import (
    FAULTS_ENV,
    fault_point,
    faults_active,
    inject_faults,
    parse_faults,
)
from repro.exec.pool import ExecutorPool
from repro.exec.shm import SEGMENT_PREFIX, SegmentUnavailable, sweep_orphans
from repro.kb.expansion import expand_predicates
from repro.kb.sharded import ShardedTripleStore
from repro.kb.triple import make_literal
from repro.serve import (
    AsyncAnswerer,
    DeadlineExceeded,
    MultiProcessServer,
    OverloadedError,
    ServeConfig,
    multiproc_available,
)
from repro.serve.app import KBQAServer
from repro.serve.http import HTTPRequest

TIMEOUT_S = 60.0

needs_multiproc = pytest.mark.skipif(
    not multiproc_available(),
    reason="needs SO_REUSEPORT + fork (POSIX multi-process serving)",
)


def _assert_no_children() -> None:
    """Children unregister as they are reaped; poll briefly, then assert."""
    for _ in range(300):
        if not multiprocessing.active_children():
            break
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


def _wait_until(predicate, timeout_s: float = TIMEOUT_S) -> None:
    deadline = time.monotonic() + timeout_s
    while not predicate():
        assert time.monotonic() < deadline, "condition not met before timeout"
        time.sleep(0.02)


# -- Scripted picklable targets ---------------------------------------------


def _result(question: str, value: str) -> AnswerResult:
    return AnswerResult(
        question=question,
        value=value,
        values=(value,),
        score=1.0,
        entity="e",
        template="t",
        predicate=None,
        found_predicate=True,
    )


class EchoTarget:
    """Deterministic picklable target: value is a pure function of the
    question, so serial output is the equivalence reference."""

    def answer_many(self, questions):
        return [_result(q, f"v:{' '.join(q.split())}") for q in questions]


class SlowTarget:
    """Every batch takes ``delay_s`` — the deadline tests' stalled backend."""

    def __init__(self, delay_s: float) -> None:
        self.delay_s = delay_s

    def answer_many(self, questions):
        time.sleep(self.delay_s)
        return [_result(q, "slow") for q in questions]


def _double_with_fault(task: int) -> int:
    """Module-level (picklable) pool task carrying its own fault point."""
    fault_point("test.pool.task")
    return task * 2


# -- Fault-spec harness ------------------------------------------------------


class TestFaultSpecs:
    def test_parse_full_grammar(self, tmp_path):
        token = str(tmp_path / "tok")
        faults = parse_faults(
            f"exec.worker.batch=kill,once={token};"
            "serve.replica=sleep:25,times=3,after=2;"
            "shm.attach=raise:SegmentUnavailable"
        )
        assert faults["exec.worker.batch"].action == "kill"
        assert faults["exec.worker.batch"].once == token
        assert faults["serve.replica"].action == "sleep"
        assert faults["serve.replica"].arg == "25"
        assert faults["serve.replica"].times == 3
        assert faults["serve.replica"].after == 2
        assert faults["shm.attach"].arg == "SegmentUnavailable"

    @pytest.mark.parametrize(
        "spec",
        [
            "no-equals-sign",
            "site=explode",
            "site=kill,bogus=1",
            "site=raise:NoSuchError",
            "site=sleep:abc",
            "site=exit:xyz",
        ],
    )
    def test_malformed_specs_fail_loudly(self, spec):
        with pytest.raises(ValueError):
            parse_faults(spec)

    def test_unarmed_fault_point_is_a_no_op(self):
        assert not faults_active()
        fault_point("anything.at.all")  # must not raise

    def test_raise_action_with_after_and_times(self):
        with inject_faults("t.site=raise:RuntimeError,after=2,times=2"):
            assert faults_active()
            fault_point("t.site")  # hit 1: skipped (after)
            fault_point("t.site")  # hit 2: skipped (after)
            with pytest.raises(RuntimeError, match="injected fault"):
                fault_point("t.site")  # hit 3: fire 1
            with pytest.raises(RuntimeError):
                fault_point("t.site")  # hit 4: fire 2
            fault_point("t.site")  # hit 5: budget exhausted
        assert not faults_active()

    def test_once_token_fires_exactly_once(self, tmp_path):
        token = str(tmp_path / "one.tok")
        with inject_faults(f"t.once=raise,once={token}"):
            with pytest.raises(RuntimeError):
                fault_point("t.once")
            fault_point("t.once")  # token already claimed
        assert os.path.exists(token)

    def test_invalid_spec_rejected_before_arming(self):
        with pytest.raises(ValueError):
            inject_faults("site=explode")
        assert os.environ.get(FAULTS_ENV) is None

    def test_env_restored_on_exit(self):
        with inject_faults("a=sleep:1"):
            assert os.environ[FAULTS_ENV] == "a=sleep:1"
            with inject_faults("b=sleep:1"):
                assert os.environ[FAULTS_ENV] == "b=sleep:1"
            assert os.environ[FAULTS_ENV] == "a=sleep:1"
        assert os.environ.get(FAULTS_ENV) is None


# -- Pool worker supervision -------------------------------------------------


class TestPoolSupervision:
    def test_run_survives_one_worker_kill(self, tmp_path):
        """A SIGKILL'd worker breaks the whole executor; pool.run respawns
        and re-dispatches, and the caller sees only correct results."""
        token = str(tmp_path / "kill.tok")
        with inject_faults(f"test.pool.task=kill,once={token}"):
            with ExecutorPool("process", 2) as pool:
                results = pool.run(_double_with_fault, list(range(8)))
                assert results == [n * 2 for n in range(8)]
                assert pool.respawns == 1
        _assert_no_children()

    def test_retry_budget_bounds_persistent_crashes(self):
        """A workload that kills every pool it touches must surface."""
        with inject_faults("test.pool.task=kill,times=-1"):
            with ExecutorPool("process", 2) as pool:
                with pytest.raises(BrokenExecutor):
                    pool.run(_double_with_fault, [1, 2, 3], crash_retries=1)
                assert pool.respawns == 2  # one per failed attempt
        _assert_no_children()

    def test_respawn_is_identity_checked(self):
        pool = ExecutorPool("serial")
        first = pool.executor()
        assert pool.respawn(first) is True
        replacement = pool.executor()
        assert replacement is not first
        assert pool.respawn(first) is False  # stale handle: already replaced
        assert pool.executor() is replacement
        pool.close()

    def test_published_payloads_survive_respawn(self):
        """The publisher (this process) did not die — respawn must not
        unlink segments fresh workers still attach by name."""
        pool = ExecutorPool("serial")
        pool.executor()
        name = pool.publish("k", lambda: b"payload")
        assert pool.respawn() is True
        assert pool.publish("k", lambda: b"payload") == name
        pool.close()


# -- Expansion equivalence under worker death --------------------------------


def _random_kb(kb_seed: int, shards: int):
    import random

    rng = random.Random(kb_seed)
    kb = ShardedTripleStore(shards=shards)
    entities = [f"e{i}" for i in range(20)]
    links = ["knows", "marriage", "person", "works_at"]
    for _ in range(120):
        kb.add(rng.choice(entities), rng.choice(links), rng.choice(entities))
    for i, entity in enumerate(entities):
        if rng.random() < 0.7:
            kb.add(entity, "name", make_literal(f"name {i}"))
    seeds = rng.sample(entities, 6)
    return kb, seeds


class TestExpansionUnderCrash:
    def test_worker_kill_mid_scan_is_byte_invisible(self, tmp_path):
        """Kill a worker mid-round; the respawn+retry must reproduce the
        serial expansion byte for byte."""
        kb, seeds = _random_kb(3, shards=2)
        reference = expand_predicates(kb, seeds, max_length=3, record_reach=True)
        ref_path = tmp_path / "ref.kbqa"
        reference.save(ref_path)

        token = str(tmp_path / "scan.tok")
        with inject_faults(f"exec.worker.scan=kill,once={token}"):
            with ExecutorPool("process", 2) as pool:
                produced = expand_predicates(
                    kb, seeds, max_length=3, record_reach=True, executor=pool
                )
                out_path = tmp_path / "crashed.kbqa"
                produced.save(out_path)
                assert pool.respawns >= 1  # the kill actually landed
        assert out_path.read_bytes() == ref_path.read_bytes()
        _assert_no_children()


# -- Serving: crash retry, deadlines -----------------------------------------


class TestServingCrashRetry:
    def test_process_batch_survives_worker_kill(self, tmp_path):
        """SIGKILL a serving pool worker mid-batch: the batch re-dispatches
        against respawned workers and every answer equals the serial path;
        stop() leaves no worker process behind."""
        target = EchoTarget()
        questions = [f"question number {i}?" for i in range(6)]
        expected = [r.value for r in target.answer_many(questions)]
        token = str(tmp_path / "batch.tok")
        config = ServeConfig(
            executor="process", workers=2, max_batch=2, retry_backoff_ms=1.0
        )

        async def main():
            async with AsyncAnswerer(target, config) as answerer:
                results = await answerer.answer_many(questions)
                return results, dict(answerer.snapshot())

        with inject_faults(f"exec.worker.batch=kill,once={token}"):
            results, snapshot = asyncio.run(main())
        assert [r.value for r in results] == expected
        assert snapshot["crash_retries"] >= 1
        assert snapshot["respawns"] >= 1
        _assert_no_children()

    def test_crash_retry_budget_fails_the_batch(self):
        """Unbounded worker suicide exhausts max_crash_retries and the
        caller sees the BrokenExecutor (never a hang)."""
        config = ServeConfig(
            executor="process",
            workers=2,
            max_crash_retries=1,
            retry_backoff_ms=1.0,
        )

        async def main():
            async with AsyncAnswerer(EchoTarget(), config) as answerer:
                with pytest.raises(BrokenExecutor):
                    await answerer.answer("doomed question?")
                return dict(answerer.snapshot())

        with inject_faults("exec.worker.batch=kill,times=-1"):
            snapshot = asyncio.run(main())
        assert snapshot["crash_retries"] == 1
        _assert_no_children()

    def test_deadline_expires_with_stalled_backend(self):
        """A stalled evaluation must not hold the caller past its deadline;
        the evaluation itself is not cancelled and resolves later."""
        config = ServeConfig(executor="thread", workers=1)

        async def main():
            async with AsyncAnswerer(SlowTarget(0.4), config) as answerer:
                start = time.perf_counter()
                with pytest.raises(DeadlineExceeded):
                    await answerer.answer("too slow?", deadline_s=0.05)
                waited = time.perf_counter() - start
                # un-deadlined request on the same answerer still completes
                result = await answerer.answer("patient question?")
                return waited, result, dict(answerer.snapshot())

        waited, result, snapshot = asyncio.run(main())
        assert waited < 0.35  # gave up well before the 0.4s evaluation
        assert result.value == "slow"
        assert snapshot["deadline_expired"] == 1

    def test_config_default_deadline_applies(self):
        config = ServeConfig(executor="thread", workers=1, deadline_ms=40.0)

        async def main():
            async with AsyncAnswerer(SlowTarget(0.4), config) as answerer:
                with pytest.raises(DeadlineExceeded):
                    await answerer.answer("slow by default?")
                return dict(answerer.snapshot())

        snapshot = asyncio.run(main())
        assert snapshot["deadline_expired"] == 1


# -- HTTP lifecycle: 504 + degraded mode -------------------------------------


@pytest.fixture(scope="module")
def serve_system(suite) -> KBQA:
    """A trained system over a private KB copy (safe to mutate/fork)."""
    kb = compile_freebase_like(suite.world)
    return KBQA.train(kb, suite.corpus, suite.conceptualizer)


def _answerable_question(suite, system) -> str:
    for entity in suite.world.of_type("city"):
        question = f"what is the population of {entity.name}?"
        if system.answer(question).answered:
            return question
    raise AssertionError("no answerable city question in the suite")


def _route(server, method: str, path: str, body: dict | None = None, headers=None):
    request = HTTPRequest(
        method=method,
        path=path,
        headers=headers or {},
        body=json.dumps(body).encode() if body is not None else b"",
    )
    return asyncio.run(server._route(request))


class TestHTTPDeadlines:
    def test_deadline_exceeded_maps_to_504(self, serve_system):
        server = KBQAServer(serve_system, ServeConfig())

        async def expiring(_question, **_kwargs):
            raise DeadlineExceeded("deadline of 5 ms expired")

        server.answerer.answer = expiring
        status, payload = _route(
            server,
            "POST",
            "/answer",
            {"question": "anything?"},
            headers={"x-kbqa-deadline-ms": "5"},
        )
        assert status == 504
        assert payload["error"] == "deadline exceeded"

    @pytest.mark.parametrize("raw", ["abc", "-5", "0"])
    def test_invalid_deadline_header_is_400(self, serve_system, raw):
        server = KBQAServer(serve_system, ServeConfig())
        status, payload = _route(
            server,
            "POST",
            "/answer",
            {"question": "anything?"},
            headers={"x-kbqa-deadline-ms": raw},
        )
        assert status == 400
        assert "deadline" in payload["error"].lower()

    def test_real_stall_times_out_through_the_route(self, serve_system):
        """End to end on the event loop: a stalled backend + header deadline
        produce a 504 from the route layer."""
        config = ServeConfig(executor="thread", workers=1)
        server = KBQAServer(SlowTargetSystem(), config)

        async def main():
            await server.answerer.start()
            try:
                request = HTTPRequest(
                    method="POST",
                    path="/answer",
                    headers={"x-kbqa-deadline-ms": "40"},
                    body=json.dumps({"question": "too slow?"}).encode(),
                )
                return await server._route(request)
            finally:
                await server.answerer.stop()
                server.exec_pool.close()

        status, payload = asyncio.run(main())
        assert status == 504
        assert payload["error"] == "deadline exceeded"


class SlowTargetSystem:
    """Just enough KBQA surface for KBQAServer with a stalled answerer."""

    def __init__(self) -> None:
        self.answerer = SlowTarget(0.5)

    def answer_many(self, questions):
        return self.answerer.answer_many(questions)


class TestDegradedMode:
    def test_cached_answer_served_degraded_on_overload(self, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        expected = serve_system.answer(question)  # warms the answer cache
        server = KBQAServer(serve_system, ServeConfig(max_pending=7))

        async def rejecting(_question, **_kwargs):
            raise OverloadedError("serving queue full (7 pending evaluations)")

        server.answerer.answer = rejecting
        status, payload = _route(server, "POST", "/answer", {"question": question})
        assert status == 200
        assert payload["degraded"] is True
        assert payload["value"] == expected.value
        assert server.answerer.stats.degraded == 1

    def test_uncached_question_still_gets_the_503(self, serve_system):
        server = KBQAServer(serve_system, ServeConfig(max_pending=7))

        async def rejecting(_question, **_kwargs):
            raise OverloadedError("serving queue full (7 pending evaluations)")

        server.answerer.answer = rejecting
        status, payload = _route(
            server,
            "POST",
            "/answer",
            {"question": "definitely never cached before zorp?"},
        )
        assert status == 503
        assert payload == {"error": "overloaded", "max_pending": 7}

    def test_batch_degrades_only_when_fully_cached(self, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        serve_system.answer(question)  # cached
        server = KBQAServer(serve_system, ServeConfig(max_pending=7))

        async def rejecting(_questions, **_kwargs):
            raise OverloadedError("serving queue full (7 pending evaluations)")

        server.answerer.answer_many = rejecting
        status, payload = _route(
            server,
            "POST",
            "/batch",
            {"questions": [question, "never cached zorp?"]},
        )
        assert status == 503
        status, payload = _route(
            server, "POST", "/batch", {"questions": [question, question]}
        )
        assert status == 200
        assert all(r["degraded"] for r in payload["results"])
        assert [r["value"] for r in payload["results"]] == [
            serve_system.answer(question).value
        ] * 2

    def test_fresh_answers_are_not_marked_degraded(self, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        server = KBQAServer(serve_system, ServeConfig())

        async def main():
            await server.answerer.start()
            try:
                request = HTTPRequest(
                    method="POST",
                    path="/answer",
                    body=json.dumps({"question": question}).encode(),
                )
                return await server._route(request)
            finally:
                await server.answerer.stop()
                server.exec_pool.close()

        status, payload = asyncio.run(main())
        assert status == 200
        assert payload["degraded"] is False


# -- Orphaned shared-memory sweep --------------------------------------------


def _dead_pid() -> int:
    child = multiprocessing.get_context("fork").Process(target=_noop)
    child.start()
    child.join()
    return child.pid


def _noop() -> None:
    pass


def _make_segment(name: str) -> None:
    segment = shared_memory.SharedMemory(create=True, size=16, name=name)
    segment.close()
    # this test bypasses PublishedBlob, so keep the resource tracker from
    # double-unlinking (or warning about) the name the sweep removes
    resource_tracker.unregister("/" + name, "shared_memory")


class TestOrphanSweep:
    def test_dead_publisher_segment_is_swept(self):
        name = f"{SEGMENT_PREFIX}{_dead_pid()}-deadbeef"
        _make_segment(name)
        assert name in sweep_orphans()
        assert not os.path.exists(f"/dev/shm/{name}")

    def test_live_publisher_segment_is_kept(self):
        name = f"{SEGMENT_PREFIX}{os.getpid()}-feedface"
        _make_segment(name)
        try:
            assert name not in sweep_orphans()
            assert os.path.exists(f"/dev/shm/{name}")
        finally:
            os.unlink(f"/dev/shm/{name}")

    def test_pool_start_sweeps_orphans(self):
        name = f"{SEGMENT_PREFIX}{_dead_pid()}-cafebabe"
        _make_segment(name)
        pool = ExecutorPool("serial")
        pool.executor()
        assert pool.swept >= 1
        assert not os.path.exists(f"/dev/shm/{name}")
        pool.close()

    def test_shm_gc_cli(self, capsys):
        from repro.cli import main

        name = f"{SEGMENT_PREFIX}{_dead_pid()}-0badf00d"
        _make_segment(name)
        assert main(["shm-gc"]) == 0
        out = capsys.readouterr().out
        assert name in out
        assert "reclaimed" in out


# -- Replica self-healing + combined chaos -----------------------------------


def _post(url: str, payload: dict, timeout: float = 30.0) -> tuple[int, dict]:
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=timeout) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _post_with_retry(url: str, payload: dict, attempts: int = 20) -> tuple[int, dict]:
    """Client-side retry over replica-death connection drops: the accepted
    request that finally lands is the one whose answer we assert on."""
    last: Exception | None = None
    for _ in range(attempts):
        try:
            return _post(url, payload, timeout=10.0)
        except (urllib.error.URLError, ConnectionError, OSError) as error:
            last = error
            time.sleep(0.05)
    raise AssertionError(f"request never landed after {attempts} attempts: {last!r}")


@needs_multiproc
class TestReplicaSelfHealing:
    def test_sigkilled_replica_is_replaced_and_caught_up(self, serve_system, suite):
        """Kill one of two replicas mid-load after a /facts write: the
        supervisor forks a replacement that replays the op log before
        binding, so every post-heal answer reflects the write."""
        question = _answerable_question(suite, serve_system)
        config = ServeConfig(workers=2)
        front = MultiProcessServer(
            serve_system, config, procs=2, supervise_interval_s=0.02
        )
        with front:
            # land a write through one replica; both must converge on it
            status, before = _post_with_retry(
                front.url + "/answer", {"question": question}
            )
            assert status == 200 and before["answered"] is True
            status, payload = _post_with_retry(
                front.url + "/facts",
                {"op": "add", "subject": before["entity"],
                 "predicate": "population", "object": make_literal("123456789")},
            )
            assert status == 200 and payload["changed"] is True

            victim = front._children[0]
            os.kill(victim.pid, signal.SIGKILL)
            _wait_until(lambda: front.respawned >= 1)
            _wait_until(lambda: all(c.is_alive() for c in front._children))

            # hammer both replicas: every answer must include the written
            # value — a healed replica serving pre-write state would miss it
            for _ in range(20):
                status, payload = _post_with_retry(
                    front.url + "/answer", {"question": question}
                )
                assert status == 200
                assert "123456789" in payload["values"], (
                    "a replica answered with pre-write state after healing"
                )
        assert front.respawned >= 1
        _assert_no_children()

    def test_combined_chaos_worker_and_replica_kill(self, serve_system, suite, tmp_path):
        """The acceptance scenario: two replicas on a process executor; one
        pool worker and one replica are SIGKILL'd mid-load.  Every accepted
        request must come back correct (or explicitly degraded), capacity
        must recover without a restart, and nothing — child process or shm
        segment — may outlive stop()."""
        question = _answerable_question(suite, serve_system)
        expected = serve_system.answer(question)
        worker_tok = str(tmp_path / "worker.tok")
        replica_tok = str(tmp_path / "replica.tok")
        config = ServeConfig(executor="process", workers=2, retry_backoff_ms=1.0)
        spec = (
            f"exec.worker.batch=kill,once={worker_tok};"
            f"serve.replica=kill,once={replica_tok},after=10"
        )
        with inject_faults(spec):
            front = MultiProcessServer(
                serve_system, config, procs=2, supervise_interval_s=0.02
            )
            with front:
                outcomes = []
                for i in range(30):
                    status, payload = _post_with_retry(
                        front.url + "/answer", {"question": question}
                    )
                    outcomes.append(status)
                    assert status == 200, f"request {i} -> {status}: {payload}"
                    assert payload["value"] == expected.value
                    assert payload["degraded"] in (False, True)
                assert len(outcomes) == 30  # no accepted request was lost
                _wait_until(lambda: front.respawned >= 1)
                _wait_until(lambda: all(c.is_alive() for c in front._children))
                assert len(front._children) == 2  # full capacity, no restart
                status, _payload = _post_with_retry(
                    front.url + "/answer", {"question": question}
                )
                assert status == 200
        assert os.path.exists(worker_tok) or os.path.exists(replica_tok)
        _assert_no_children()
        # nothing outlives stop(): any kbqa-* segment whose publisher is dead
        # would be returned (and reclaimed) here — there must be none left
        assert sweep_orphans() == []
