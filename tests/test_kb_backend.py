"""The KB backend seam: protocol conformance, the sharded store, and
live add/delete with change notification.

The acceptance bar for the sharded backend is *equivalence*: built by the
same add sequence, ``ShardedTripleStore(shards=4)`` must assign identical
dictionary ids, answer every lookup identically, produce an identical
(byte-identical once serialized) predicate expansion, and yield identical
``answer_many`` output to the single store.
"""

import pytest

from repro.core.system import KBQA
from repro.data.compile import compile_freebase_like
from repro.kb.backend import ADD, DELETE, KBBackend, KBChange
from repro.kb.disk import DiskTripleStore
from repro.kb.expansion import expand_predicates
from repro.kb.sharded import ShardedTripleStore
from repro.kb.store import TripleStore
from repro.kb.triple import Triple, make_literal


# every live-mutation test runs against all three backends — the disk
# store must match the in-memory semantics listener-for-listener
_BACKENDS = pytest.mark.parametrize(
    "factory",
    [TripleStore, lambda: ShardedTripleStore(shards=3), DiskTripleStore],
    ids=["memory", "sharded", "disk"],
)


def _toy(kb):
    kb.add("a", "name", make_literal("alice"))
    kb.add("a", "marriage", "cvt1")
    kb.add("cvt1", "person", "b")
    kb.add("cvt1", "date", make_literal("1990"))
    kb.add("b", "name", make_literal("bob"))
    kb.add("a", "pob", "city")
    kb.add("city", "name", make_literal("springfield"))
    kb.add("city", "mayor", "m")
    kb.add("m", "name", make_literal("mel"))
    return kb


class TestProtocolConformance:
    def test_both_implementations_satisfy_the_protocol(self):
        assert isinstance(TripleStore(), KBBackend)
        assert isinstance(ShardedTripleStore(shards=2), KBBackend)
        assert isinstance(DiskTripleStore(), KBBackend)

    def test_invalid_shard_count_rejected(self):
        with pytest.raises(ValueError):
            ShardedTripleStore(shards=0)

    def test_single_store_sharding_face(self):
        kb = _toy(TripleStore())
        assert kb.n_shards == 1
        assert dict(kb.shard_spo_items_ids(0)) == dict(kb.spo_items_ids())
        with pytest.raises(IndexError):
            kb.shard_spo_items_ids(1)


class TestShardedEquivalence:
    @pytest.fixture()
    def pair(self):
        return _toy(TripleStore()), _toy(ShardedTripleStore(shards=3))

    def test_identical_dictionary_ids(self, pair):
        single, sharded = pair
        assert list(single.dictionary.terms()) == list(sharded.dictionary.terms())

    def test_identical_lookups(self, pair):
        single, sharded = pair
        assert len(single) == len(sharded)
        assert set(single.triples()) == set(sharded.triples())
        assert set(single.subjects_iter()) == set(sharded.subjects_iter())
        assert single.predicates() == sharded.predicates()
        for subject in single.subjects_iter():
            assert single.predicates_of(subject) == sharded.predicates_of(subject)
            assert single.out_degree(subject) == sharded.out_degree(subject)
            for predicate in single.predicates_of(subject):
                assert single.objects(subject, predicate) == sharded.objects(
                    subject, predicate
                )
        assert single.subjects("name", make_literal("bob")) == sharded.subjects(
            "name", make_literal("bob")
        )
        assert single.predicates_between("a", "cvt1") == sharded.predicates_between(
            "a", "cvt1"
        )

    def test_identical_id_scan(self, pair):
        single, sharded = pair
        assert set(single.triples_ids()) == set(sharded.triples_ids())
        per_shard = set()
        for i in range(sharded.n_shards):
            for s_id, by_predicate in sharded.shard_spo_items_ids(i):
                assert sharded.shard_of(s_id) == i
                for p_id, object_ids in by_predicate.items():
                    per_shard.update((s_id, p_id, o) for o in object_ids)
        assert per_shard == set(single.triples_ids())

    def test_stats_aggregate(self, pair):
        single, sharded = pair
        expected = dict(single.stats())
        got = dict(sharded.stats())
        assert got.pop("shards") == 3
        assert got == expected

    def test_compiled_kb_equivalence(self, suite):
        sharded_kb = compile_freebase_like(suite.world, shards=4)
        single_store = suite.freebase.store
        assert list(single_store.dictionary.terms()) == list(
            sharded_kb.store.dictionary.terms()
        )
        assert len(single_store) == len(sharded_kb.store)
        assert set(single_store.triples_ids()) == set(sharded_kb.store.triples_ids())


class TestShardedExpansionEquivalence:
    def test_expansion_identical_and_bytes_identical(self, suite, tmp_path):
        """Acceptance: ShardedTripleStore(shards=4) produces byte-identical
        ExpandedStore contents to the single store."""
        sharded_kb = compile_freebase_like(suite.world, shards=4)
        seeds = [e.node for e in suite.world.of_type("person")[:12]]
        seeds += [e.node for e in suite.world.of_type("city")[:6]]
        single = expand_predicates(
            suite.freebase.store, seeds, max_length=3, record_reach=True
        )
        sharded = expand_predicates(
            sharded_kb.store, seeds, max_length=3, record_reach=True
        )
        assert len(single) == len(sharded) > 0
        assert {(s, str(p), o) for s, p, o in single.triples()} == {
            (s, str(p), o) for s, p, o in sharded.triples()
        }
        assert single.seed_ids == sharded.seed_ids
        single_path = tmp_path / "single.kbqa"
        sharded_path = tmp_path / "sharded.kbqa"
        single.save(single_path)
        sharded.save(sharded_path)
        assert single_path.read_bytes() == sharded_path.read_bytes()


class TestShardedAnswerEquivalence:
    def test_answer_many_identical(self, suite, kbqa_fb):
        """Acceptance: identical answer_many output on a 4-shard backend."""
        sharded_kb = compile_freebase_like(suite.world, shards=4)
        sharded_system = KBQA.train(sharded_kb, suite.corpus, suite.conceptualizer)
        questions = [q.question for q in suite.benchmark("qald3").bfqs()]
        questions.append("what should i eat tonight?")
        assert sharded_system.answer_many(questions) == kbqa_fb.answer_many(questions)


class TestDelete:
    @_BACKENDS
    def test_delete_removes_from_all_indexes(self, factory):
        kb = _toy(factory())
        n = len(kb)
        assert kb.delete("cvt1", "person", "b")
        assert len(kb) == n - 1
        assert not kb.has("cvt1", "person", "b")
        assert kb.objects("cvt1", "person") == set()
        assert kb.subjects("person", "b") == set()
        assert kb.predicates_between("cvt1", "b") == set()
        assert "person" not in kb.predicates()

    @_BACKENDS
    def test_delete_prunes_ghost_subjects(self, factory):
        kb = _toy(factory())
        assert kb.delete("m", "name", make_literal("mel"))
        assert not kb.has_subject("m")
        assert Triple("m", "name", make_literal("mel")) not in kb

    @_BACKENDS
    def test_delete_absent_returns_false(self, factory):
        kb = _toy(factory())
        n = len(kb)
        assert not kb.delete("a", "name", make_literal("nobody"))
        assert not kb.delete("ghost", "name", make_literal("alice"))
        assert len(kb) == n

    def test_add_after_delete_round_trips(self):
        kb = _toy(TripleStore())
        assert kb.delete("a", "pob", "city")
        assert kb.add("a", "pob", "city")
        assert kb.objects("a", "pob") == {"city"}


class TestChangeNotification:
    @_BACKENDS
    def test_add_and_delete_notify(self, factory):
        kb = factory()
        changes: list[KBChange] = []
        kb.subscribe(changes.append)
        kb.add("s", "p", "o")
        assert [c.action for c in changes] == [ADD]
        s, p, o = changes[0].subject_id, changes[0].predicate_id, changes[0].object_id
        assert (kb.decode_id(s), kb.decode_id(p), kb.decode_id(o)) == ("s", "p", "o")
        kb.delete("s", "p", "o")
        assert [c.action for c in changes] == [ADD, DELETE]
        assert changes[1] == KBChange(DELETE, s, p, o)

    @_BACKENDS
    def test_no_notification_on_noop(self, factory):
        kb = factory()
        kb.add("s", "p", "o")
        changes: list[KBChange] = []
        kb.subscribe(changes.append)
        kb.add("s", "p", "o")  # duplicate
        kb.delete("s", "p", "missing")  # absent
        assert changes == []

    def test_unsubscribe(self):
        kb = TripleStore()
        changes: list[KBChange] = []
        unsubscribe = kb.subscribe(changes.append)
        kb.add("s", "p", "o")
        unsubscribe()
        kb.add("s", "p", "o2")
        assert len(changes) == 1
        unsubscribe()  # idempotent
