"""Tests for the triple store and its three index orderings."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kb.store import TripleStore
from repro.kb.triple import Triple, is_literal, literal_value, make_literal

LIT_1961 = make_literal("1961")
LIT_1964 = make_literal("1964")
LIT_POP = make_literal("390000")


@pytest.fixture
def toy_store() -> TripleStore:
    """The paper's Figure 1 toy KB (Barack Obama / Honolulu fragment)."""
    kb = TripleStore()
    kb.add("a", "name", make_literal("barack obama"))
    kb.add("a", "dob", LIT_1961)
    kb.add("a", "pob", "d")
    kb.add("a", "marriage", "b")
    kb.add("b", "person", "c")
    kb.add("b", "date", make_literal("1992"))
    kb.add("c", "name", make_literal("michelle obama"))
    kb.add("c", "dob", LIT_1964)
    kb.add("d", "name", make_literal("honolulu"))
    kb.add("d", "population", LIT_POP)
    return kb


class TestTripleConventions:
    def test_make_literal_prefixes(self):
        assert make_literal("1961") == '"1961'

    def test_make_literal_idempotent(self):
        assert make_literal(make_literal("x")) == make_literal("x")

    def test_is_literal(self):
        assert is_literal(make_literal("x"))
        assert not is_literal("m.x")

    def test_literal_value_roundtrip(self):
        assert literal_value(make_literal("hello")) == "hello"

    def test_literal_value_rejects_resources(self):
        with pytest.raises(ValueError):
            literal_value("m.x")

    def test_triple_iteration(self):
        t = Triple("s", "p", "o")
        assert tuple(t) == ("s", "p", "o")


class TestTripleStore:
    def test_add_and_has(self, toy_store):
        assert toy_store.has("a", "dob", LIT_1961)
        assert not toy_store.has("a", "dob", make_literal("1999"))

    def test_add_duplicate_returns_false(self):
        kb = TripleStore()
        assert kb.add("s", "p", "o") is True
        assert kb.add("s", "p", "o") is False
        assert len(kb) == 1

    def test_objects_lookup(self, toy_store):
        assert toy_store.objects("a", "dob") == {LIT_1961}
        assert toy_store.objects("a", "pob") == {"d"}

    def test_objects_missing_subject(self, toy_store):
        assert toy_store.objects("ghost", "dob") == set()

    def test_subjects_lookup(self, toy_store):
        assert toy_store.subjects("dob", LIT_1961) == {"a"}

    def test_predicates_between(self, toy_store):
        assert toy_store.predicates_between("a", "d") == {"pob"}
        assert toy_store.predicates_between("a", "c") == set()

    def test_predicates_of(self, toy_store):
        assert "dob" in toy_store.predicates_of("a")
        assert "marriage" in toy_store.predicates_of("a")

    def test_out_degree(self, toy_store):
        assert toy_store.out_degree("a") == 4
        assert toy_store.out_degree("ghost") == 0

    def test_has_subject(self, toy_store):
        assert toy_store.has_subject("a")
        assert not toy_store.has_subject(LIT_1961)

    def test_triples_scan_complete(self, toy_store):
        assert len(list(toy_store.triples())) == len(toy_store) == 10

    def test_triple_membership_operator(self, toy_store):
        assert Triple("a", "pob", "d") in toy_store
        assert Triple("a", "pob", "c") not in toy_store

    def test_predicates_inventory(self, toy_store):
        expected = {"name", "dob", "pob", "marriage", "person", "date", "population"}
        assert toy_store.predicates() == expected

    def test_add_all_counts_new(self, toy_store):
        added = toy_store.add_all([
            Triple("a", "pob", "d"),  # duplicate
            Triple("d", "country", "x"),  # new
        ])
        assert added == 1

    def test_stats(self, toy_store):
        stats = toy_store.stats()
        assert stats["triples"] == 10
        assert stats["predicates"] == 7
        assert stats["subjects"] == 4


# Small alphabets force index collisions to be exercised.
_terms = st.sampled_from(["s1", "s2", "s3", "o1", "o2"])
_preds = st.sampled_from(["p1", "p2"])


class TestTripleStoreProperties:
    @given(st.lists(st.tuples(_terms, _preds, _terms), max_size=60))
    def test_indexes_agree(self, triples):
        """SPO, POS and OSP must answer consistently for every triple."""
        kb = TripleStore()
        for s, p, o in triples:
            kb.add(s, p, o)
        unique = set(triples)
        assert len(kb) == len(unique)
        for s, p, o in unique:
            assert o in kb.objects(s, p)
            assert s in kb.subjects(p, o)
            assert p in kb.predicates_between(s, o)

    @given(st.lists(st.tuples(_terms, _preds, _terms), max_size=60))
    def test_scan_matches_insertions(self, triples):
        kb = TripleStore()
        for s, p, o in triples:
            kb.add(s, p, o)
        scanned = {(t.subject, t.predicate, t.object) for t in kb.triples()}
        assert scanned == set(triples)

    @given(st.lists(st.tuples(_terms, _preds, _terms), max_size=60))
    def test_out_degree_sums_to_size(self, triples):
        kb = TripleStore()
        for s, p, o in triples:
            kb.add(s, p, o)
        assert sum(kb.out_degree(s) for s in kb.subjects_iter()) == len(kb)
