"""Serial == thread == process, across seeds, shard counts and workers.

The execution layer's contract (the tentpole acceptance gate): routing the
Sec 6.2 expansion scan or the serving ``answer_many`` path through *any*
backend changes nothing about the output —

* expansion: the canonical :meth:`ExpandedStore.save` bytes are identical
  to the single-store serial scan, for randomized KBs over a grid of
  (kb seed x shard count x backend x worker count);
* serving: ``AsyncAnswerer`` results over a randomized duplicate-heavy
  stream equal the synchronous path, per backend, on the real trained
  system;
* the selection rules (explicit arg > ``KBQA_EXEC``/``KBQA_WORKERS``
  environment > default) behave and clamp as documented.
"""

from __future__ import annotations

import asyncio
import random

import pytest

from repro.exec.backend import (
    ProcessExecutor,
    SerialExecutor,
    ThreadExecutor,
    make_executor,
    resolve_exec_kind,
    resolve_workers,
)
from repro.kb.expansion import expand_predicates
from repro.kb.sharded import ShardedTripleStore
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal
from repro.serve import AsyncAnswerer, LoadSpec, ServeConfig, build_request_stream

BACKENDS = ("serial", "thread", "process")


def random_kb(kb_seed: int, shards: int):
    """A randomized KB built by a *deterministic add sequence* per kb_seed.

    The same sequence regardless of shard count, so every store assigns
    identical dictionary ids — the property that makes expansion outputs
    byte-comparable across backends and partitionings.  Chains run through
    intermediate nodes into naming predicates so multi-hop paths survive the
    Sec 6.3 tail restriction.
    """
    rng = random.Random(kb_seed)
    kb = ShardedTripleStore(shards=shards) if shards > 1 else TripleStore()
    entities = [f"e{i}" for i in range(24)]
    links = ["knows", "marriage", "person", "works_at", "located_in"]
    for _ in range(160):
        kb.add(rng.choice(entities), rng.choice(links), rng.choice(entities))
    for i, entity in enumerate(entities):
        if rng.random() < 0.7:
            kb.add(entity, "name", make_literal(f"name {i}"))
        if rng.random() < 0.3:
            kb.add(entity, "alias", make_literal(f"alias {i}"))
    seeds = rng.sample(entities, 8)
    return kb, seeds


def expansion_bytes(kb, seeds, tmp_path, tag: str, **kwargs) -> bytes:
    out = tmp_path / f"{tag}.kbqa"
    expanded = expand_predicates(kb, seeds, max_length=3, record_reach=True, **kwargs)
    expanded.save(out)
    return out.read_bytes()


class TestExpansionEquivalence:
    @pytest.mark.parametrize("kb_seed", [0, 1, 2])
    @pytest.mark.parametrize("shards", [1, 2, 3])
    def test_backends_byte_identical(self, kb_seed, shards, tmp_path):
        """Every backend produces the serial single-store bytes exactly."""
        reference_kb, seeds = random_kb(kb_seed, shards=1)
        reference = expansion_bytes(
            reference_kb, seeds, tmp_path, "ref", executor="serial"
        )
        kb, seeds_again = random_kb(kb_seed, shards=shards)
        assert seeds_again == seeds
        for backend in BACKENDS:
            produced = expansion_bytes(
                kb, seeds, tmp_path, f"{backend}-{shards}",
                executor=backend, workers=2,
            )
            assert produced == reference, f"{backend} diverged at shards={shards}"

    @pytest.mark.parametrize("workers", [1, 2, 4])
    def test_process_worker_counts_equivalent(self, workers, tmp_path):
        """Worker count never changes the output, only the parallelism."""
        kb, seeds = random_kb(5, shards=3)
        reference = expansion_bytes(kb, seeds, tmp_path, "ref", executor="serial")
        produced = expansion_bytes(
            kb, seeds, tmp_path, f"w{workers}", executor="process", workers=workers
        )
        assert produced == reference

    def test_caller_owned_executors(self, tmp_path):
        """Pre-built executor instances work too — including a payload-less
        process pool, whose tasks then ship self-contained shard tables."""
        kb, seeds = random_kb(7, shards=2)
        reference = expansion_bytes(kb, seeds, tmp_path, "ref", executor="serial")
        for executor in (SerialExecutor(), ThreadExecutor(2), ProcessExecutor(2)):
            with executor:
                produced = expansion_bytes(
                    kb, seeds, tmp_path, f"inst-{executor.kind}", executor=executor
                )
            assert produced == reference, f"{executor.kind} instance diverged"

    def test_environment_selects_backend(self, tmp_path, monkeypatch):
        """KBQA_EXEC/KBQA_WORKERS drive the default resolution end to end."""
        kb, seeds = random_kb(9, shards=2)
        reference = expansion_bytes(kb, seeds, tmp_path, "ref", executor="serial")
        monkeypatch.setenv("KBQA_EXEC", "process")
        monkeypatch.setenv("KBQA_WORKERS", "2")
        produced = expansion_bytes(kb, seeds, tmp_path, "env")
        assert produced == reference


class TestServingEquivalence:
    @pytest.mark.parametrize("backend", BACKENDS)
    @pytest.mark.parametrize("stream_seed", [3, 11])
    def test_answer_many_equals_sync(self, backend, stream_seed, kbqa_fb, suite):
        """Async results over a randomized duplicate-heavy stream equal the
        synchronous path on every backend (process: frozen-snapshot copy)."""
        pool = [q.question for q in suite.benchmark("qald3").bfqs()][:12]
        stream = build_request_stream(
            pool,
            LoadSpec(requests=48, concurrency=8, duplicate_rate=0.5, seed=stream_seed),
        )
        expected = [kbqa_fb.answer(q) for q in stream]

        async def main():
            config = ServeConfig(workers=2, max_batch=8, executor=backend)
            async with AsyncAnswerer(kbqa_fb, config) as answerer:
                return await answerer.answer_many(stream)

        assert asyncio.run(main()) == expected


class TestSelectionRules:
    def test_map_preserves_task_order(self):
        tasks = list(range(20))
        for kind in BACKENDS:
            with make_executor(kind, 3) as executor:
                assert executor.map(_double, tasks) == [t * 2 for t in tasks]

    def test_resolve_workers_clamps(self, monkeypatch):
        monkeypatch.delenv("KBQA_WORKERS", raising=False)
        assert resolve_workers(0) == 1
        assert resolve_workers(-5) == 1
        assert resolve_workers(3) == 3
        assert resolve_workers(None, fallback=0) == 1
        assert resolve_workers(None, fallback=7) == 7
        monkeypatch.setenv("KBQA_WORKERS", "0")
        assert resolve_workers(None) == 1
        monkeypatch.setenv("KBQA_WORKERS", "4")
        assert resolve_workers(None) == 4
        assert resolve_workers(2) == 2  # explicit beats environment
        monkeypatch.setenv("KBQA_WORKERS", "not-a-number")
        assert resolve_workers(None, fallback=5) == 5

    def test_resolve_exec_kind(self, monkeypatch):
        monkeypatch.delenv("KBQA_EXEC", raising=False)
        assert resolve_exec_kind(None, default="thread") == "thread"
        assert resolve_exec_kind("process") == "process"
        monkeypatch.setenv("KBQA_EXEC", "serial")
        assert resolve_exec_kind(None, default="thread") == "serial"
        assert resolve_exec_kind("thread") == "thread"  # explicit beats env
        with pytest.raises(ValueError, match="unknown execution backend"):
            resolve_exec_kind("fibers")

    def test_serve_config_rejects_unknown_executor(self):
        with pytest.raises(ValueError, match="executor"):
            ServeConfig(executor="fibers")


def _double(x: int) -> int:
    return x * 2
