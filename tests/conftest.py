"""Shared fixtures: a small world/suite and trained systems, built once.

Everything here is session-scoped and deterministic (seed 7), so the whole
test suite pays the build/train cost exactly once per interpreter.
"""

from __future__ import annotations

import pytest

from repro.core.system import KBQA
from repro.suite import Suite, build_suite


@pytest.fixture(scope="session")
def suite() -> Suite:
    """The small-scale synthetic setup used across the test suite."""
    return build_suite("small", seed=7)


@pytest.fixture(scope="session")
def world(suite):
    return suite.world


@pytest.fixture(scope="session")
def freebase(suite):
    return suite.freebase


@pytest.fixture(scope="session")
def dbpedia(suite):
    return suite.dbpedia


@pytest.fixture(scope="session")
def corpus(suite):
    return suite.corpus


@pytest.fixture(scope="session")
def conceptualizer(suite):
    return suite.conceptualizer


@pytest.fixture(scope="session")
def kbqa_fb(suite) -> KBQA:
    """KBQA trained on the Freebase-like KB (the main system under test)."""
    return KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)


@pytest.fixture(scope="session")
def kbqa_dbp(suite) -> KBQA:
    """KBQA trained on the DBpedia-like KB."""
    return KBQA.train(suite.dbpedia, suite.corpus, suite.conceptualizer)


def pick_entity(world, etype: str, *required_intents: str):
    """First entity of ``etype`` carrying all ``required_intents`` facts."""
    for entity in world.of_type(etype):
        if all(entity.get_fact(intent) for intent in required_intents):
            return entity
    raise AssertionError(f"no {etype} with facts {required_intents}")
