"""Tests for the shared tokenizer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.tokenizer import detokenize, tokenize


class TestTokenize:
    def test_basic_question(self):
        assert tokenize("When was Barack Obama born?") == [
            "when", "was", "barack", "obama", "born", "?",
        ]

    def test_possessive_splits(self):
        assert tokenize("Barack Obama's wife") == ["barack", "obama", "'s", "wife"]

    def test_unicode_apostrophe(self):
        assert tokenize("obama’s") == ["obama", "'s"]

    def test_numbers_survive_punctuation(self):
        # the answer-extraction bug class: '1904.' must tokenize to '1904'
        assert tokenize("the year was 1904.") == ["the", "year", "was", "1904"]

    def test_concept_tokens_preserved(self):
        assert tokenize("when was $person born?") == ["when", "was", "$person", "born", "?"]

    def test_hyphenated(self):
        assert tokenize("well-known") == ["well-known"]

    def test_commas_dropped(self):
        assert tokenize("a, b and c") == ["a", "b", "and", "c"]

    def test_empty(self):
        assert tokenize("") == []

    def test_lowercases(self):
        assert tokenize("HELLO World") == ["hello", "world"]

    @given(st.text(max_size=80))
    def test_never_raises_and_tokens_nonempty(self, text):
        tokens = tokenize(text)
        assert all(tokens), "no empty tokens"

    @given(st.text(alphabet="abc 123'?", max_size=40))
    def test_idempotent_through_detokenize(self, text):
        tokens = tokenize(text)
        assert tokenize(detokenize(tokens)) == tokens


class TestUnicodeFolding:
    """The paraphrase-axis bug class: typographic unicode must fold onto the
    ASCII tokens the templates were learned from, not silently drop chars."""

    def test_diacritics_fold(self):
        assert tokenize("São Paulo") == ["sao", "paulo"]
        assert tokenize("Zoë") == ["zoe"]
        assert tokenize("rené p000123") == ["rene", "p000123"]

    def test_diacritic_name_matches_ascii_question(self):
        # a gazetteer name with diacritics and an ASCII-typed question must
        # produce identical token streams (and vice versa)
        assert tokenize("where was José born?") == tokenize("where was Jose born?")

    def test_curly_quotes(self):
        assert tokenize("“Obama’s” wife") == ["obama", "'s", "wife"]
        assert tokenize("obama‘s") == ["obama", "'s"]

    def test_dashes_fold_to_hyphen(self):
        assert tokenize("well–known") == ["well-known"]  # en dash
        assert tokenize("well—known") == ["well-known"]  # em dash
        assert tokenize("well‑known") == ["well-known"]  # non-breaking hyphen

    def test_fullwidth_question_mark(self):
        assert tokenize("when was obama born？") == [
            "when", "was", "obama", "born", "?",
        ]

    def test_fullwidth_letters_nfkc(self):
        assert tokenize("ｏｂａｍａ") == ["obama"]

    def test_nbsp_separates_tokens(self):
        assert tokenize("barack obama") == ["barack", "obama"]

    def test_ellipsis_dropped(self):
        assert tokenize("born… where?") == ["born", "where", "?"]

    def test_unfoldable_scripts_produce_no_tokens(self):
        # no ASCII fold exists: abstain (no tokens) rather than mis-tokenize
        assert tokenize("Москва") == []
        assert tokenize("東京") == []

    def test_ascii_behaviour_byte_identical(self):
        # the doctest contract: pure-ASCII questions tokenize exactly as
        # before the folding change
        assert tokenize("When was Barack Obama's wife born?") == [
            "when", "was", "barack", "obama", "'s", "wife", "born", "?",
        ]


class TestDetokenize:
    def test_rejoins_possessive(self):
        assert detokenize(["obama", "'s", "wife"]) == "obama's wife"

    def test_rejoins_question_mark(self):
        assert detokenize(["born", "?"]) == "born?"
