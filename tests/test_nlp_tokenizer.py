"""Tests for the shared tokenizer."""

from hypothesis import given
from hypothesis import strategies as st

from repro.nlp.tokenizer import detokenize, tokenize


class TestTokenize:
    def test_basic_question(self):
        assert tokenize("When was Barack Obama born?") == [
            "when", "was", "barack", "obama", "born", "?",
        ]

    def test_possessive_splits(self):
        assert tokenize("Barack Obama's wife") == ["barack", "obama", "'s", "wife"]

    def test_unicode_apostrophe(self):
        assert tokenize("obama’s") == ["obama", "'s"]

    def test_numbers_survive_punctuation(self):
        # the answer-extraction bug class: '1904.' must tokenize to '1904'
        assert tokenize("the year was 1904.") == ["the", "year", "was", "1904"]

    def test_concept_tokens_preserved(self):
        assert tokenize("when was $person born?") == ["when", "was", "$person", "born", "?"]

    def test_hyphenated(self):
        assert tokenize("well-known") == ["well-known"]

    def test_commas_dropped(self):
        assert tokenize("a, b and c") == ["a", "b", "and", "c"]

    def test_empty(self):
        assert tokenize("") == []

    def test_lowercases(self):
        assert tokenize("HELLO World") == ["hello", "world"]

    @given(st.text(max_size=80))
    def test_never_raises_and_tokens_nonempty(self, text):
        tokens = tokenize(text)
        assert all(tokens), "no empty tokens"

    @given(st.text(alphabet="abc 123'?", max_size=40))
    def test_idempotent_through_detokenize(self, text):
        tokens = tokenize(text)
        assert tokenize(detokenize(tokens)) == tokens


class TestDetokenize:
    def test_rejoins_possessive(self):
        assert detokenize(["obama", "'s", "wife"]) == "obama's wife"

    def test_rejoins_question_mark(self):
        assert detokenize(["born", "?"]) == "born?"
