"""Tests for N-Triples-like serialization."""

from hypothesis import given
from hypothesis import strategies as st

from repro.kb.rdf_io import load_ntriples, save_ntriples
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal

import pytest


class TestRoundTrip:
    def test_simple_roundtrip(self, tmp_path):
        kb = TripleStore()
        kb.add("a", "dob", make_literal("1961"))
        kb.add("a", "pob", "d")
        path = tmp_path / "kb.nt"
        assert save_ntriples(kb, path) == 2
        loaded = load_ntriples(path)
        assert len(loaded) == 2
        assert loaded.has("a", "dob", make_literal("1961"))

    def test_escaped_characters_roundtrip(self, tmp_path):
        kb = TripleStore()
        nasty = make_literal("tab\there\nand newline\\slash")
        kb.add("s", "p", nasty)
        path = tmp_path / "kb.nt"
        save_ntriples(kb, path)
        loaded = load_ntriples(path)
        assert loaded.has("s", "p", nasty)

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.nt"
        path.write_text("only\ttwo\n")
        with pytest.raises(ValueError, match="expected 3 fields"):
            load_ntriples(path)

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "kb.nt"
        path.write_text("a\tp\tb\n\n\nc\tp\td\n")
        assert len(load_ntriples(path)) == 2

    @given(
        st.lists(
            st.tuples(
                st.text(alphabet="abc\t\n\\", min_size=1, max_size=6),
                st.sampled_from(["p", "q"]),
                st.text(alphabet="xyz\t\n\\\"", min_size=1, max_size=6),
            ),
            max_size=20,
        )
    )
    def test_roundtrip_property(self, tmp_path_factory, triples):
        kb = TripleStore()
        for s, p, o in triples:
            kb.add(s, p, o)
        path = tmp_path_factory.mktemp("rdf") / "kb.nt"
        save_ntriples(kb, path)
        loaded = load_ntriples(path)
        original = {(t.subject, t.predicate, t.object) for t in kb.triples()}
        restored = {(t.subject, t.predicate, t.object) for t in loaded.triples()}
        assert original == restored

    def test_compiled_kb_roundtrip(self, suite, tmp_path):
        """The full Freebase-like store must survive serialization."""
        path = tmp_path / "freebase.nt"
        count = save_ntriples(suite.freebase.store, path)
        loaded = load_ntriples(path)
        assert len(loaded) == count == len(suite.freebase.store)
        assert loaded.stats() == suite.freebase.store.stats()
