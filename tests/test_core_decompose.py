"""Tests for pattern statistics and the decomposition DP (Sec 5)."""

import pytest

from repro.core.decompose import PatternStatistics
from repro.nlp.ner import EntityRecognizer

from tests.conftest import pick_entity


@pytest.fixture
def example4_stats():
    """The paper's Example 4: two 'when was X born?' questions."""
    ner = EntityRecognizer({
        "barack obama": ["a"], "michelle obama": ["c"],
    })
    questions = [
        "when was barack obama born?",
        "when was michelle obama born?",
    ]
    return PatternStatistics.from_corpus(questions, ner)


class TestPatternStatistics:
    def test_example4_valid_pattern(self, example4_stats):
        """'when was $e born ?' matches both questions validly: P = 1."""
        assert example4_stats.validity("when was $e born ?".split()) == pytest.approx(1.0)

    def test_example4_overgeneral_pattern(self, example4_stats):
        """'when $e ?' matches both, but never on an entity span: P = 0."""
        assert example4_stats.validity("when $e ?".split()) == pytest.approx(0.0)

    def test_unseen_pattern_zero(self, example4_stats):
        assert example4_stats.validity("how large is $e ?".split()) == 0.0

    def test_fo_counts_questions_not_spans(self, example4_stats):
        # both questions produce 'when was $e born ?' (from several spans in
        # principle) but fo counts each question once
        assert example4_stats.fo["when was $e born ?"] == 2

    def test_partial_entity_span_not_valid(self, example4_stats):
        # replacing only the first name ('barack' / 'michelle') is observed
        # in both questions but never on a full entity span
        pattern = "when was $e obama born ?"
        assert example4_stats.fo[pattern] == 2
        assert example4_stats.fv[pattern] == 0
        assert example4_stats.validity(pattern.split()) == 0.0

    def test_long_questions_skipped(self):
        ner = EntityRecognizer({"x": ["n"]})
        long_question = " ".join(["word"] * 30) + " x?"
        stats = PatternStatistics.from_corpus([long_question], ner, max_tokens=23)
        assert stats.questions_indexed == 0

    def test_max_questions_cap(self):
        ner = EntityRecognizer({"x": ["n"]})
        stats = PatternStatistics.from_corpus(
            ["what is x?"] * 100, ner, max_questions=10
        )
        assert stats.questions_indexed == 10


class TestDecomposition:
    def test_simple_bfq_stays_whole(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population")
        decomposition = kbqa_fb.decompose(f"what is the population of {city.name}?")
        assert decomposition.is_simple
        assert decomposition.score == pytest.approx(1.0)

    def test_capital_population_decomposes(self, suite, kbqa_fb):
        country = pick_entity(suite.world, "country", "capital")
        question = f"how many people are there in the capital of {country.name}?"
        decomposition = kbqa_fb.decompose(question)
        assert len(decomposition.sequence) == 2
        assert decomposition.sequence[0] == f"the capital of {country.name}"
        assert decomposition.sequence[1] == "how many people are there in $e ?"
        assert decomposition.score > 0.0

    def test_spouse_dob_decomposes(self, suite, kbqa_fb):
        person = pick_entity(suite.world, "person", "spouse")
        question = f"when was {person.name} 's wife born?"
        decomposition = kbqa_fb.decompose(question)
        assert len(decomposition.sequence) == 2
        assert decomposition.sequence[0] == f"{person.name} 's wife"
        assert decomposition.sequence[1] == "when was $e born ?"

    def test_undecomposable_scores_zero(self, kbqa_fb):
        decomposition = kbqa_fb.decompose("what should i eat tonight?")
        assert decomposition.is_simple
        assert decomposition.score == 0.0

    def test_empty_question(self, kbqa_fb):
        decomposition = kbqa_fb.decompose("")
        assert decomposition.score == 0.0

    def test_is_primitive_on_known_template(self, suite, kbqa_fb):
        from repro.nlp.tokenizer import tokenize

        city = pick_entity(suite.world, "city", "population")
        tokens = tokenize(f"what is the population of {city.name}?")
        assert kbqa_fb.decomposer.is_primitive(tokens)

    def test_is_primitive_rejects_unknown(self, kbqa_fb):
        from repro.nlp.tokenizer import tokenize

        assert not kbqa_fb.decomposer.is_primitive(tokenize("utterly novel phrasing here"))


class TestComplexAnswering:
    def test_capital_population_chain(self, suite, kbqa_fb):
        country = pick_entity(suite.world, "country", "capital")
        capital = suite.world.entity(country.get_fact("capital")[0])
        question = f"how many people are there in the capital of {country.name}?"
        answer = kbqa_fb.answer_complex(question)
        assert answer.answered
        assert answer.value in suite.world.gold_values(capital.node, "population")
        assert len(answer.steps) == 2

    def test_spouse_dob_chain(self, suite, kbqa_fb):
        person = pick_entity(suite.world, "person", "spouse")
        spouse = suite.world.entity(person.get_fact("spouse")[0])
        answer = kbqa_fb.answer_complex(f"when was {person.name} 's wife born?")
        assert answer.answered
        assert answer.value in suite.world.gold_values(spouse.node, "dob")

    def test_simple_question_passes_through(self, suite, kbqa_fb):
        city = pick_entity(suite.world, "city", "population")
        answer = kbqa_fb.answer_complex(f"what is the population of {city.name}?")
        assert answer.answered
        assert len(answer.steps) == 1

    def test_broken_chain_returns_unanswered(self, suite, kbqa_fb):
        person = next(
            p for p in suite.world.of_type("person") if not p.get_fact("spouse")
        )
        answer = kbqa_fb.answer_complex(f"when was {person.name} 's wife born?")
        assert not answer.answered

    def test_complex_benchmark_mostly_answered(self, suite, kbqa_fb):
        """Table 15's claim: KBQA answers the bulk of the complex set."""
        benchmark = suite.benchmark("complex")
        answered_right = 0
        for bq in benchmark.questions:
            answer = kbqa_fb.answer_complex(bq.question)
            if answer.answered and set(answer.values) & set(bq.gold_values):
                answered_right += 1
        assert answered_right >= benchmark.n_total - 2
