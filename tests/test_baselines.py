"""Tests for the baseline QA systems (keyword / rule / synonym / hybrid)."""

import pytest

from repro.baselines.bootstrapping import BootstrapLearner
from repro.baselines.hybrid import HybridSystem
from repro.baselines.keyword import KeywordQA, predicate_keywords
from repro.baselines.rule import RuleQA
from repro.baselines.synonym import SynonymQA, build_default_lexicon
from repro.kb.paths import PredicatePath

from tests.conftest import pick_entity


class TestKeywordQA:
    @pytest.fixture(scope="class")
    def keyword(self, suite):
        return KeywordQA(suite.freebase)

    def test_answers_predicate_named_question(self, suite, keyword):
        """'what is the population of X' names the predicate: answerable."""
        city = pick_entity(suite.world, "city", "population")
        result = keyword.answer(f"what is the population of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_fails_paraphrase(self, suite, keyword):
        """The paper's core keyword-failure: 'how many people are there in
        X?' has no keyword matching 'population'."""
        city = pick_entity(suite.world, "city", "population")
        result = keyword.answer(f"how many people are there in {city.name}?")
        assert result.value not in suite.world.gold_values(city.node, "population") or not result.answered

    def test_no_entity_refused(self, keyword):
        assert not keyword.answer("what is the population?").answered

    def test_predicate_keywords_split_camel_case(self):
        words = predicate_keywords(PredicatePath(("populationTotal",)))
        assert "population" in words and "total" in words

    def test_predicate_keywords_split_underscores(self):
        words = predicate_keywords(PredicatePath(("organization_members", "member", "name")))
        assert "organization" in words and "members" in words

    def test_dbpedia_variant(self, suite):
        keyword_dbp = KeywordQA(suite.dbpedia)
        city = pick_entity(suite.world, "city", "population")
        result = keyword_dbp.answer(f"what is the population total of {city.name}?")
        assert result.answered


class TestRuleQA:
    @pytest.fixture(scope="class")
    def rule(self, suite):
        return RuleQA(suite.freebase)

    def test_canned_pattern_answers(self, suite, rule):
        city = pick_entity(suite.world, "city", "population")
        result = rule.answer(f"what is the population of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_label_based_pattern(self, suite, rule):
        country = pick_entity(suite.world, "country", "capital")
        result = rule.answer(f"what is the capital of {country.name}?")
        assert result.answered

    def test_off_pattern_refused(self, suite, rule):
        city = pick_entity(suite.world, "city", "population")
        assert not rule.answer(f"how many people are there in {city.name}?").answered

    def test_unknown_label_refused(self, suite, rule):
        city = pick_entity(suite.world, "city", "population")
        assert not rule.answer(f"what is the frobnication of {city.name}?").answered

    def test_who_pattern(self, suite, rule):
        city = pick_entity(suite.world, "city", "mayor")
        result = rule.answer(f"who is the mayor of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "mayor")


class TestSynonymQA:
    @pytest.fixture(scope="class")
    def synonym(self, suite):
        return SynonymQA(suite.freebase)

    def test_exact_label(self, suite, synonym):
        city = pick_entity(suite.world, "city", "population")
        result = synonym.answer(f"what is the population of {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_synonym_phrase(self, suite, synonym):
        """Question c© of Table 1: 'total number of people' is a synonym."""
        city = pick_entity(suite.world, "city", "population")
        result = synonym.answer(f"what is the total number of people in {city.name}?")
        assert result.answered
        assert result.value in suite.world.gold_values(city.node, "population")

    def test_fails_non_synonym_paraphrase(self, suite, synonym):
        """Question a© of Table 1: 'how many people are there in X?' —
        no contiguous phrase is a population synonym (the paper's DEANNA
        failure)."""
        city = pick_entity(suite.world, "city", "population")
        result = synonym.answer(f"how many people are there in {city.name}?")
        gold = suite.world.gold_values(city.node, "population")
        assert not result.answered or result.value not in gold

    def test_type_coherence_disambiguates_born(self, suite, synonym):
        """'born' is a synonym of both dob and pob; the question type must
        pick the right one (when -> DATE -> dob, where -> LOC -> pob)."""
        person = pick_entity(suite.world, "person", "dob", "pob")
        when = synonym.answer(f"when was {person.name} born?")
        assert when.answered
        assert when.value in suite.world.gold_values(person.node, "dob")
        where = synonym.answer(f"where was {person.name} born?")
        assert where.answered
        assert where.value in suite.world.gold_values(person.node, "pob")

    def test_no_entity_refused(self, synonym):
        assert not synonym.answer("what is the population of nowhere-land?").answered

    def test_default_lexicon_nonempty(self, suite):
        lexicon = build_default_lexicon(suite.freebase)
        assert len(lexicon) > 50
        pop_path = str(suite.freebase.expected_path("population"))
        assert pop_path in lexicon.predicates()


class TestBootstrapping:
    @pytest.fixture(scope="class")
    def boot_result(self, suite):
        return BootstrapLearner(suite.freebase).learn(suite.sentences)

    def test_learns_patterns(self, boot_result):
        assert boot_result.n_patterns > 0
        assert boot_result.sentences_matched > 0

    def test_population_pattern_found(self, boot_result):
        population_patterns = [
            p for p in boot_result.patterns if p.predicate == "population"
        ]
        assert population_patterns
        infixes = {" ".join(p.infix) for p in population_patterns}
        assert any("population" in infix for infix in infixes)

    def test_direct_only_no_cvt_relations(self, boot_result):
        """Bootstrapping aligns against flat relation instances: the CVT
        relations (spouse, members) are out of reach — the coverage gap of
        Table 12."""
        assert "marriage" not in boot_result.predicates
        assert "group_member" not in boot_result.predicates

    def test_coverage_gap_vs_kbqa(self, boot_result, kbqa_fb):
        """Table 12's claim: template learning covers far more templates
        and more predicates than bootstrapping."""
        assert kbqa_fb.model.n_templates > 10 * boot_result.n_patterns
        assert kbqa_fb.model.n_predicates > boot_result.n_predicates


class TestHybrid:
    def test_kbqa_preferred(self, suite, kbqa_fb):
        keyword = KeywordQA(suite.freebase)
        hybrid = HybridSystem(kbqa_fb, keyword)
        city = pick_entity(suite.world, "city", "population")
        question = f"how many people are there in {city.name}?"
        assert hybrid.answer(question).value == kbqa_fb.answer(question).value

    def test_fallback_used_on_refusal(self, suite, kbqa_fb):
        """A question KBQA refuses but the synonym system answers must fall
        through (the Table 11 uplift mechanism)."""
        synonym = SynonymQA(suite.freebase)
        hybrid = HybridSystem(kbqa_fb, synonym)
        # a held-out paraphrase with a strong synonym: 'what is the head
        # count of X' - kbqa misses (unseen), synonym has no phrase either;
        # use an unseen-surface question the synonym CAN do instead:
        city = pick_entity(suite.world, "city", "area")
        question = f"how much ground does {city.name} cover?"
        kbqa_result = kbqa_fb.answer(question)
        hybrid_result = hybrid.answer(question)
        if not kbqa_result.answered:
            assert hybrid_result.value == synonym.answer(question).value

    def test_hybrid_never_hurts_coverage(self, suite, kbqa_fb):
        from repro.eval.runner import evaluate_qald

        synonym = SynonymQA(suite.freebase)
        hybrid = HybridSystem(kbqa_fb, synonym)
        bench = suite.benchmark("qald3")
        alone, _ = evaluate_qald(synonym, bench, suite.freebase)
        combined, _ = evaluate_qald(hybrid, bench, suite.freebase)
        assert combined.right >= alone.right
        assert combined.recall >= alone.recall


class TestHybridTieBreak:
    """The four answered/found_predicate quadrants when the primary abstains.

    Regression for the #pro accounting bug: with both sides abstaining and
    neither finding a predicate, the hybrid must return the *primary's*
    result (its diagnostics describe the system under test), not the
    fallback's empty one.
    """

    class _Scripted:
        def __init__(self, result):
            self._result = result

        def answer(self, question):
            from dataclasses import replace

            return replace(self._result, question=question)

    @staticmethod
    def _result(tag, answered, found_predicate):
        from repro.core.online import AnswerResult

        return AnswerResult(
            question="q",
            value=tag if answered else None,
            values=(tag,) if answered else (),
            score=1.0 if answered else 0.0,
            entity=tag,
            template=None,
            predicate=None,
            found_predicate=found_predicate,
        )

    def _hybrid(self, primary, fallback):
        return HybridSystem(self._Scripted(primary), self._Scripted(fallback))

    def test_primary_answered_wins(self):
        primary = self._result("p", answered=True, found_predicate=True)
        fallback = self._result("f", answered=True, found_predicate=True)
        assert self._hybrid(primary, fallback).answer("q?").value == "p"

    def test_fallback_answer_used_when_primary_abstains(self):
        primary = self._result("p", answered=False, found_predicate=True)
        fallback = self._result("f", answered=True, found_predicate=True)
        assert self._hybrid(primary, fallback).answer("q?").value == "f"

    def test_both_abstain_only_primary_found_predicate(self):
        primary = self._result("p", answered=False, found_predicate=True)
        fallback = self._result("f", answered=False, found_predicate=False)
        result = self._hybrid(primary, fallback).answer("q?")
        assert result.entity == "p" and result.found_predicate

    def test_both_abstain_only_fallback_found_predicate(self):
        primary = self._result("p", answered=False, found_predicate=False)
        fallback = self._result("f", answered=False, found_predicate=True)
        result = self._hybrid(primary, fallback).answer("q?")
        assert result.entity == "f" and result.found_predicate

    def test_both_abstain_both_found_predicate_prefers_primary(self):
        primary = self._result("p", answered=False, found_predicate=True)
        fallback = self._result("f", answered=False, found_predicate=True)
        assert self._hybrid(primary, fallback).answer("q?").entity == "p"

    def test_both_abstain_neither_found_predicate_prefers_primary(self):
        """The fixed quadrant: the primary's diagnostics must survive."""
        primary = self._result("p", answered=False, found_predicate=False)
        fallback = self._result("f", answered=False, found_predicate=False)
        result = self._hybrid(primary, fallback).answer("q?")
        assert result.entity == "p"
        assert not result.found_predicate
