"""Tests for the synthetic Infobox and the conceptnet builders."""

import pytest

from repro.data.conceptnet import build_conceptualizer, build_taxonomy, concepts_for_type
from repro.data.infobox import INFOBOX_EXCLUDED_INTENTS, Infobox, build_infobox

from tests.conftest import pick_entity


class TestInfobox:
    def test_literal_fact_present(self, suite):
        person = pick_entity(suite.world, "person", "dob")
        infobox = suite.infobox
        assert infobox.has_fact(person.node, person.get_fact("dob")[0])

    def test_entity_fact_rendered_as_name(self, suite):
        person = pick_entity(suite.world, "person", "spouse")
        spouse_name = next(iter(suite.world.gold_values(person.node, "spouse")))
        assert suite.infobox.has_fact(person.node, spouse_name)

    def test_absent_fact(self, suite):
        person = suite.world.of_type("person")[0]
        assert not suite.infobox.has_fact(person.node, "definitely-not-a-value")

    def test_excluded_intents_not_present(self, suite):
        assert "songs" in INFOBOX_EXCLUDED_INTENTS
        band = pick_entity(suite.world, "band", "songs")
        for song_name in suite.world.gold_values(band.node, "songs"):
            assert not suite.infobox.has_fact(band.node, song_name)

    def test_attributes_carry_labels(self, suite):
        person = pick_entity(suite.world, "person", "dob")
        labels = {label for label, _v in suite.infobox.attributes(person.node)}
        assert "date of birth" in labels

    def test_len_counts_entries(self):
        box = Infobox()
        box.add("e", "l", "v")
        box.add("e", "l2", "v2")
        assert len(box) == 2

    def test_build_matches_world_fact_count(self, suite):
        rebuilt = build_infobox(suite.world)
        expected = sum(
            len(values)
            for entity in suite.world.entities.values()
            for intent, values in entity.facts.items()
            if intent not in INFOBOX_EXCLUDED_INTENTS
        )
        assert len(rebuilt) <= expected  # duplicates collapse in the set
        assert len(rebuilt) > 0


class TestConceptnetBuilders:
    def test_taxonomy_covers_all_entities(self, suite):
        taxonomy = build_taxonomy(suite.world)
        assert taxonomy.stats()["entities"] == len(suite.world.entities)

    def test_taxonomy_weights_from_world(self, suite):
        city = suite.world.of_type("city")[0]
        prior = build_taxonomy(suite.world).prior(city.node)
        assert prior["$city"] == pytest.approx(0.7)

    def test_concepts_for_type(self):
        assert "$city" in concepts_for_type("city")
        person_concepts = concepts_for_type("person")
        assert "$person" in person_concepts
        assert "$politician" in person_concepts

    def test_conceptualizer_without_extra_contexts(self, suite):
        c = build_conceptualizer(suite.world)
        city = suite.world.of_type("city")[0]
        assert c.best_concept(city.node) == "$city"

    def test_extra_contexts_sharpen(self, suite):
        c = build_conceptualizer(
            suite.world, extra_contexts={"$city": ["how many people are there in"]}
        )
        city = suite.world.of_type("city")[0]
        posterior = c.conceptualize(city.node, "how many people are there in ?".split())
        assert posterior["$city"] > 0.7
