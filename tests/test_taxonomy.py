"""Tests for the is-a network and context-aware conceptualization."""

import pytest

from repro.taxonomy.conceptualizer import Conceptualizer
from repro.taxonomy.isa import IsANetwork, is_concept


class TestIsANetwork:
    def test_prior_normalizes(self):
        net = IsANetwork()
        net.add("m.honolulu", "$city", 8.0)
        net.add("m.honolulu", "$location", 2.0)
        prior = net.prior("m.honolulu")
        assert prior["$city"] == pytest.approx(0.8)
        assert sum(prior.values()) == pytest.approx(1.0)

    def test_repeated_add_accumulates(self):
        net = IsANetwork()
        net.add("e", "$c", 1.0)
        net.add("e", "$c", 1.0)
        net.add("e", "$d", 2.0)
        assert net.prior("e")["$c"] == pytest.approx(0.5)

    def test_unknown_entity_prior_empty(self):
        assert IsANetwork().prior("ghost") == {}

    def test_concept_prefix_enforced(self):
        with pytest.raises(ValueError):
            IsANetwork().add("e", "city")

    def test_nonpositive_weight_rejected(self):
        with pytest.raises(ValueError):
            IsANetwork().add("e", "$c", 0.0)

    def test_instances_inverse_of_concepts(self):
        net = IsANetwork()
        net.add("e1", "$c")
        net.add("e2", "$c")
        assert net.instances("$c") == {"e1", "e2"}
        assert net.concepts("e1") == {"$c"}

    def test_merge(self):
        a, b = IsANetwork(), IsANetwork()
        a.add("e", "$c", 1.0)
        b.add("e", "$c", 1.0)
        b.add("f", "$d", 1.0)
        a.merge(b)
        assert a.concepts("f") == {"$d"}
        assert a.prior("e") == {"$c": 1.0}

    def test_stats(self):
        net = IsANetwork()
        net.add("e", "$c")
        net.add("e", "$d")
        assert net.stats() == {"entities": 1, "concepts": 2, "edges": 2}

    def test_is_concept(self):
        assert is_concept("$city")
        assert not is_concept("city")


class TestConceptualizer:
    @pytest.fixture
    def apple_net(self) -> IsANetwork:
        net = IsANetwork()
        net.add("m.apple_co", "$company", 8.0)
        net.add("m.apple_co", "$organization", 2.0)
        net.add("m.apple_fruit", "$fruit", 9.0)
        net.add("m.apple_fruit", "$food", 1.0)
        return net

    @pytest.fixture
    def contextualized(self, apple_net) -> Conceptualizer:
        c = Conceptualizer(apple_net)
        c.observe_text("$company", "headquarter ceo revenue founded company")
        c.observe_text("$fruit", "eat sweet juice ripe tree")
        return c

    def test_no_context_returns_prior(self, apple_net):
        c = Conceptualizer(apple_net)
        assert c.conceptualize("m.apple_co") == apple_net.prior("m.apple_co")

    def test_paper_apple_example(self, contextualized):
        """'what is the headquarter of apple' -> $company (Sec 1.3)."""
        context = "what is the headquarter of".split()
        assert contextualized.best_concept("m.apple_co", context) == "$company"
        fruit_posterior = contextualized.conceptualize("m.apple_fruit", context)
        # The fruit node has no $company concept; its best is still $fruit,
        # but a company-context question scores the company node higher.
        company_score = contextualized.context_log_likelihood("$company", context)
        fruit_score = contextualized.context_log_likelihood("$fruit", context)
        assert company_score > fruit_score
        assert set(fruit_posterior) == {"$fruit", "$food"}

    def test_context_flips_concept(self, contextualized):
        eat_context = "how do i eat a ripe".split()
        hq_context = "where is the headquarter of".split()
        assert contextualized.best_concept("m.apple_fruit", eat_context) == "$fruit"
        assert contextualized.best_concept("m.apple_co", hq_context) == "$company"

    def test_posterior_is_distribution(self, contextualized):
        posterior = contextualized.conceptualize("m.apple_co", ["headquarter"])
        assert sum(posterior.values()) == pytest.approx(1.0)
        assert all(p >= 0 for p in posterior.values())

    def test_unknown_entity(self, contextualized):
        assert contextualized.conceptualize("ghost", ["x"]) == {}
        assert contextualized.best_concept("ghost") is None

    def test_stopwords_ignored(self, contextualized):
        with_stop = contextualized.conceptualize("m.apple_co", ["the", "of", "headquarter"])
        without = contextualized.conceptualize("m.apple_co", ["headquarter"])
        assert with_stop == pytest.approx(without)

    def test_invalid_smoothing(self, apple_net):
        with pytest.raises(ValueError):
            Conceptualizer(apple_net, smoothing=0.0)

    def test_world_conceptualizer_disambiguates(self, suite):
        """The suite-level conceptualizer must solve the designed ambiguity:
        company-named foods resolve by context."""
        ambiguous = suite.world.ambiguous_names()
        target = None
        for name, nodes in ambiguous.items():
            types = {suite.world.entity(n).etype for n in nodes}
            if "company" in types and "food" in types:
                target = (name, nodes)
                break
        assert target is not None, "world must contain a company/food collision"
        _name, nodes = target
        company = next(n for n in nodes if suite.world.entity(n).etype == "company")
        context = "where is the headquarter of ?".split()
        best = suite.conceptualizer.best_concept(company, context)
        assert best == "$company"
