"""Control-plane contract: quotas, fair queueing, the SLO feedback law.

Unit layer: the controller's ``tick`` is synchronous and clock-injectable,
so the AIMD law (shrink on breach, widen under headroom, hold in the dead
band, idle on thin samples) is tested deterministically against a knob
stub + a real :class:`ServeMetrics` fed with explicit timestamps — no
sleeps, no load generation.

Integration layer: a live ``AsyncAnswerer`` with ``adaptive=True`` /
``quota=...`` proves the wiring — the controller task actually moves the
live knobs, quotas actually 429 a flooding tenant while a quiet one is
served, and a crash-retried batch's latency spike (tainted samples) never
ratchets the window down.
"""

import asyncio
import time

import pytest

from repro.core.online import AnswerResult
from repro.serve.async_answerer import AsyncAnswerer, ServeConfig
from repro.serve.control import (
    ControllerConfig,
    FairQueue,
    QuotaExceeded,
    SLOController,
    TokenBucket,
    parse_quota,
)
from repro.serve.metrics import ServeMetrics


def _result(question: str, value: str) -> AnswerResult:
    return AnswerResult(
        question=question,
        value=value,
        values=(value,),
        score=1.0,
        entity="e",
        template="t",
        predicate=None,
        found_predicate=True,
    )


class EchoTarget:
    """Deterministic picklable target (value is a function of the question)."""

    def answer_many(self, questions):
        return [_result(q, f"v:{' '.join(q.split())}") for q in questions]


# -- Token buckets and quota parsing ----------------------------------------


class TestTokenBucket:
    def test_burst_then_refill(self):
        bucket = TokenBucket(rate=10.0, burst=3.0, now=0.0)
        assert [bucket.take(0.0) for _ in range(4)] == [True, True, True, False]
        # 0.1 s at 10/s refills exactly one token
        assert bucket.take(0.1) is True
        assert bucket.take(0.1) is False

    def test_refill_caps_at_burst(self):
        bucket = TokenBucket(rate=100.0, burst=2.0, now=0.0)
        assert bucket.take(1000.0) is True  # an hour idle != unlimited burst
        assert bucket.take(1000.0) is True
        assert bucket.take(1000.0) is False

    def test_time_never_runs_backward(self):
        bucket = TokenBucket(rate=1.0, burst=1.0, now=10.0)
        assert bucket.take(10.0) is True
        assert bucket.take(5.0) is False  # stale timestamp cannot mint tokens


class TestParseQuota:
    def test_plain_and_weighted(self):
        quota = parse_quota("50:100")
        assert quota.rate_qps == 50.0
        assert quota.burst == 100.0
        assert quota.weight("anyone") == 1.0
        weighted = parse_quota("50:100;gold=4;free=1")
        assert weighted.weight("gold") == 4.0
        assert weighted.weight("free") == 1.0
        assert weighted.weight("other") == 1.0

    @pytest.mark.parametrize(
        "spec", ["", "50", "x:y", "50:100;gold", "50:100;=2", "0:10", "5:0"]
    )
    def test_rejects_malformed(self, spec):
        with pytest.raises(ValueError):
            parse_quota(spec)

    def test_serve_config_validates_quota_eagerly(self):
        with pytest.raises(ValueError):
            ServeConfig(quota="not-a-spec")
        with pytest.raises(ValueError):
            ServeConfig(adaptive=True)  # adaptive requires an SLO


# -- Fair queueing -----------------------------------------------------------


def _item(tenant, i=0):
    return (f"k{tenant}{i}", f"q{i}", None, tenant, 0.0)


class TestFairQueue:
    def test_drains_proportionally_to_weights(self):
        queue = FairQueue(parse_quota("1000:1000;heavy=3;light=1"))
        for i in range(300):
            queue.append(_item("heavy", i))
        for i in range(100):
            queue.append(_item("light", i))
        first_200 = [queue.popleft()[3] for _ in range(200)]
        heavy = first_200.count("heavy")
        light = first_200.count("light")
        # deficit WRR: 3:1 service within rounding over any long prefix
        assert heavy == pytest.approx(150, abs=8)
        assert light == pytest.approx(50, abs=8)
        while queue:
            queue.popleft()
        assert len(queue) == 0

    def test_flooder_cannot_starve_fifo_order_within_tenant(self):
        queue = FairQueue(parse_quota("100:100"))
        for i in range(5):
            queue.append(_item("a", i))
        queue.append(_item("b", 0))
        drained = [queue.popleft() for _ in range(6)]
        # b is served long before a's backlog drains...
        assert drained.index(_item("b", 0)) <= 1
        # ...and a's items come out in its own FIFO order
        a_items = [item for item in drained if item[3] == "a"]
        assert a_items == [_item("a", i) for i in range(5)]

    def test_admit_spends_tokens_then_queued_share(self):
        queue = FairQueue(parse_quota("1:2"))
        now = 0.0
        assert queue.admit("hog", now, max_pending=8)  # token 1
        assert queue.admit("hog", now, max_pending=8)  # token 2
        # bucket empty: the share bypass admits until the backlog reaches
        # the tenant's slice — half the box for a lone default-weight
        # tenant (the other half is the newcomer reserve)
        for i in range(4):
            assert queue.admit("hog", now, max_pending=8)
            queue.append(_item("hog", i))
        assert not queue.admit("hog", now, max_pending=8)  # share exhausted

    def test_share_splits_between_contending_tenants(self):
        queue = FairQueue(parse_quota("1:1;hog=1;payg=1"))
        now = 0.0
        queue.admit("hog", now, max_pending=8)  # burn both single tokens
        queue.admit("payg", now, max_pending=8)
        queue.append(_item("payg", 0))  # payg is now a contending tenant
        for i in range(10):
            if queue.admit("hog", now, max_pending=9):
                queue.append(_item("hog", i))
        # two equal-weight contenders + the newcomer reserve: a third each
        assert queue.queued("hog") <= 3

    def test_popleft_empty_raises(self):
        queue = FairQueue(parse_quota("1:1"))
        with pytest.raises(IndexError):
            queue.popleft()

    # admit() defaults max_pending through keyword in the answerer; give the
    # two-arg form used above an explicit default for the test calls
    def test_admit_signature(self):
        queue = FairQueue(parse_quota("1000:1000"))
        assert queue.admit(None, 0.0, max_pending=4)


# -- The AIMD law (unit, injected clock) ------------------------------------


class _Knobs:
    """The controller's view of an answerer: three mutable attributes."""

    def __init__(self, window=2.0, batch=8, pending=256):
        self.batch_window_ms = window
        self.max_batch = batch
        self.max_pending = pending


def _controller(knobs, metrics, **overrides):
    defaults = dict(slo_p99_ms=50.0, min_samples=8, min_pending=32)
    defaults.update(overrides)
    return SLOController(knobs, metrics, ControllerConfig(**defaults))


def _feed(metrics, value_ms, n, now, tainted=False):
    for _ in range(n):
        metrics.observe_total(value_ms, tainted=tainted, now=now)


class TestSLOControllerLaw:
    def test_idle_below_min_samples(self):
        knobs, metrics = _Knobs(), ServeMetrics()
        controller = _controller(knobs, metrics)
        _feed(metrics, 10.0, 3, now=100.0)
        assert controller.tick(now=100.0) == "idle"
        assert knobs.batch_window_ms == 2.0
        assert controller.idle_ticks == 1

    def test_breach_shrinks_multiplicatively(self):
        knobs, metrics = _Knobs(window=4.0, batch=16), ServeMetrics()
        controller = _controller(knobs, metrics)
        _feed(metrics, 200.0, 20, now=100.0)  # p99 ~200ms >> 50ms SLO
        assert controller.tick(now=100.0) == "shrink"
        assert knobs.batch_window_ms == pytest.approx(2.0)
        assert knobs.max_batch == 8
        assert controller.breaches == 1

    def test_window_snaps_to_min_instead_of_decaying_geometrically(self):
        knobs, metrics = _Knobs(window=0.4, batch=2), ServeMetrics()
        controller = _controller(knobs, metrics)
        _feed(metrics, 200.0, 20, now=100.0)
        controller.tick(now=100.0)
        assert knobs.batch_window_ms == 0.0  # 0.2 < snap_to_min -> min

    def test_headroom_widens_additively_up_to_caps(self):
        knobs, metrics = _Knobs(window=1.0, batch=4), ServeMetrics()
        config = ControllerConfig(
            slo_p99_ms=50.0,
            min_samples=8,
            max_window_ms=2.0,
            widen_step_ms=0.75,
        )
        controller = SLOController(knobs, metrics, config, batch_cap=6)
        _feed(metrics, 1.0, 20, now=100.0)  # far under 0.7 * 50ms
        assert controller.tick(now=100.0) == "widen"
        assert knobs.batch_window_ms == pytest.approx(1.75)
        assert knobs.max_batch == 6  # +2 clamped at the explicit cap
        assert controller.tick(now=100.0) == "widen"
        assert knobs.batch_window_ms == pytest.approx(2.0)  # clamped at cap
        # a shrunk batch can widen back, but never past batch_cap
        knobs.max_batch = 2
        controller.tick(now=100.0)
        assert knobs.max_batch == 4

    def test_dead_band_holds(self):
        knobs, metrics = _Knobs(window=1.0), ServeMetrics()
        controller = _controller(knobs, metrics, headroom=0.5)
        # p99 lands between 25 and 50 ms: inside the hysteresis band
        _feed(metrics, 30.0, 50, now=100.0)
        assert controller.tick(now=100.0) == "hold"
        assert knobs.batch_window_ms == 1.0
        assert controller.adjustments == controller.admission_changes

    def test_tainted_spike_does_not_shrink(self):
        """The crash-retry interaction: a worker SIGKILL inflates latency
        by the respawn cost, but those samples are recorded tainted — the
        controller must keep steering on the healthy traffic."""
        knobs, metrics = _Knobs(window=4.0), ServeMetrics()
        controller = _controller(knobs, metrics)
        _feed(metrics, 5.0, 30, now=100.0)  # healthy traffic under SLO
        _feed(metrics, 5000.0, 10, now=100.0, tainted=True)  # respawn spike
        action = controller.tick(now=100.0)
        assert action in ("widen", "hold")  # anything but shrink
        assert knobs.batch_window_ms >= 4.0
        assert controller.breaches == 0
        # the same spike recorded untainted *would* have shrunk: p99 over
        # 40 samples ranks into the spike
        knobs2, metrics2 = _Knobs(window=4.0), ServeMetrics()
        controller2 = _controller(knobs2, metrics2)
        _feed(metrics2, 5.0, 30, now=100.0)
        _feed(metrics2, 5000.0, 10, now=100.0)
        assert controller2.tick(now=100.0) == "shrink"

    def test_admission_tracks_service_rate(self):
        knobs, metrics = _Knobs(pending=256), ServeMetrics(window_s=0.5, windows=8)
        controller = _controller(knobs, metrics, min_pending=16)
        # 400 samples over 4 live windows (2 s) = 200 qps measured rate;
        # target = 200 * 0.05 s * 4.0 safety = 40
        for i in range(400):
            metrics.observe_total(5.0, now=100.0 + (i % 4) * 0.5)
        controller.tick(now=101.5)
        assert knobs.max_pending == 40
        assert controller.admission_changes == 1
        # a trickle cannot drop admission below min_pending
        for i in range(10):
            metrics.observe_total(5.0, now=200.0)
        controller.tick(now=200.0)
        assert knobs.max_pending == 16

    def test_admission_floor_follows_the_live_batch_knob(self):
        """The floor is max(min_pending, 2 * max_batch): sized for two full
        batches at the *current* batch knob, so a breach-shrunk batch lets
        admission cap queue wait near the SLO instead of pinning the queue
        at a depth sized for the abandoned batch shape."""
        knobs, metrics = _Knobs(batch=8, pending=256), ServeMetrics(
            window_s=0.5, windows=8
        )
        controller = _controller(knobs, metrics, min_pending=4)
        for i in range(10):
            # in the dead band, so the tick holds the window/batch knobs
            metrics.observe_total(40.0, now=100.0)
        controller.tick(now=100.0)
        assert knobs.max_pending == 16  # 2 * batch 8 > min_pending 4
        knobs.max_batch = 2  # as a run of breaches would leave it
        controller.tick(now=100.0)
        assert knobs.max_pending == 4  # 2 * batch 2 < min_pending 4

    def test_old_traffic_rotates_out_of_the_signal(self):
        knobs, metrics = _Knobs(window=4.0), ServeMetrics(window_s=0.5, windows=8)
        controller = _controller(knobs, metrics)
        _feed(metrics, 500.0, 50, now=100.0)  # an overload burst...
        controller.tick(now=100.0)
        assert knobs.batch_window_ms < 4.0
        window_after_breach = knobs.batch_window_ms
        # ...minutes later the burst is gone; recovery traffic widens again
        _feed(metrics, 1.0, 50, now=200.0)
        assert controller.tick(now=200.0) == "widen"
        assert knobs.batch_window_ms > window_after_breach

    def test_snapshot_shape_and_trace(self):
        knobs, metrics = _Knobs(), ServeMetrics()
        controller = _controller(knobs, metrics)
        _feed(metrics, 1.0, 20, now=100.0)
        controller.tick(now=100.0)
        snap = controller.snapshot()
        assert snap["ticks"] == 1
        assert snap["adjustments"] >= 1
        assert snap["initial_window_ms"] == 2.0
        assert snap["trace"][-1]["action"] in ("widen", "hold")
        assert snap["trace"][-1]["window_ms"] == knobs.batch_window_ms


# -- Integration: live answerer ---------------------------------------------


class TestAdaptiveIntegration:
    def test_controller_task_moves_live_knobs(self):
        """End to end: adaptive serving against a fast target widens the
        window off real measured latency, and every answer stays correct."""
        config = ServeConfig(
            workers=2,
            max_batch=16,
            batch_window_ms=0.0,
            slo_ms=100.0,
            adaptive=True,
        )
        questions = [f"question {i}?" for i in range(8)]
        expected = {q: f"v:question {i}?" for i, q in enumerate(questions)}

        async def main():
            async with AsyncAnswerer(EchoTarget(), config) as answerer:
                controller = answerer.controller
                assert controller is not None
                deadline = time.monotonic() + 10.0
                results = {}
                while time.monotonic() < deadline:
                    for q in questions:
                        results[q] = (await answerer.answer(q)).value
                    if controller.adjustments >= 1:
                        break
                return results, controller.snapshot(), answerer.batch_window_ms

        results, snap, live_window = asyncio.run(main())
        assert snap["adjustments"] >= 1
        assert snap["widened"] >= 1  # fast target under a lax SLO: widen
        assert live_window > 0.0
        assert results == expected

    def test_static_config_never_starts_a_controller(self):
        async def main():
            async with AsyncAnswerer(EchoTarget(), ServeConfig(workers=1)) as a:
                assert a.controller is None
                assert a.controller_snapshot() is None
                await a.answer("q?")

        asyncio.run(main())


class TestQuotaIntegration:
    def test_flooding_tenant_throttled_quiet_tenant_served(self):
        """The fairness acceptance: a tenant flooding *concurrently* past
        its bucket and queued share collects 429s, while a quiet tenant —
        submitting into the same backlog — completes everything."""

        class SlowEcho(EchoTarget):
            def answer_many(self, questions):
                time.sleep(0.005)  # keep the hog's backlog standing
                return super().answer_many(questions)

        config = ServeConfig(
            workers=1,
            max_batch=2,
            max_pending=16,
            quota="5:5",  # 5 qps sustained, burst 5, per tenant
        )

        async def main():
            async with AsyncAnswerer(SlowEcho(), config) as answerer:

                async def hog_one(i):
                    try:
                        await answerer.answer(f"hog question {i}?", tenant="hog")
                        return "ok"
                    except QuotaExceeded:
                        return "throttled"

                hogs = [asyncio.ensure_future(hog_one(i)) for i in range(40)]
                await asyncio.sleep(0)  # let the flood enqueue first
                quiet = await asyncio.gather(
                    *(
                        answerer.answer(f"quiet question {i}?", tenant="quiet")
                        for i in range(3)
                    )
                )
                outcomes = await asyncio.gather(*hogs)
                return outcomes, quiet, answerer.snapshot()

        outcomes, quiet, snapshot = asyncio.run(main())
        hog_429 = outcomes.count("throttled")
        hog_done = outcomes.count("ok")
        assert hog_429 > 0  # the flood hit the throttle
        assert hog_done >= 5  # burst + queued share still served some
        assert len(quiet) == 3  # the quiet tenant never sees a 429
        assert all(r.value.startswith("v:quiet") for r in quiet)
        assert snapshot["quota_rejected"] == hog_429

    def test_coalesced_joins_are_quota_free(self):
        """Joining an in-flight evaluation costs the box nothing, so it
        must not burn the tenant's tokens."""
        config = ServeConfig(workers=1, max_batch=4, quota="1:1")

        async def main():
            async with AsyncAnswerer(EchoTarget(), config) as answerer:
                # one token admits the first; the duplicates coalesce free
                results = await asyncio.gather(
                    *(answerer.answer("same question?", tenant="t") for _ in range(6))
                )
                return {r.value for r in results}, answerer.snapshot()

        values, snapshot = asyncio.run(main())
        assert values == {"v:same question?"}
        assert snapshot["quota_rejected"] == 0
        assert snapshot["coalesced"] >= 1


class TestControllerFaultInteraction:
    def test_worker_kill_does_not_ratchet_the_window(self, tmp_path):
        """A SIGKILL'd process worker mid-batch: the retry path absorbs the
        crash, the retried batch's samples are recorded tainted, and the
        controller — fed only untainted samples — never counts a breach
        for it.  All answers still correct, controller still alive."""
        from repro.exec.faults import inject_faults

        config = ServeConfig(
            executor="process",
            workers=2,
            max_batch=4,
            retry_backoff_ms=1.0,
            slo_ms=5000.0,  # lax SLO: only the crash spike could breach it
            adaptive=True,
        )
        questions = [f"question number {i}?" for i in range(8)]
        target = EchoTarget()
        expected = [r.value for r in target.answer_many(questions)]
        token = str(tmp_path / "ctl.tok")

        async def main():
            async with AsyncAnswerer(target, config) as answerer:
                results = await answerer.answer_many(questions)
                # let the controller observe the post-crash window
                await asyncio.sleep(0.6)
                return (
                    [r.value for r in results],
                    answerer.snapshot(),
                    answerer.metrics.tainted,
                    answerer.controller.snapshot(),
                )

        with inject_faults(f"exec.worker.batch=kill,once={token}"):
            values, snapshot, tainted, ctl = asyncio.run(main())
        assert values == expected
        assert snapshot["crash_retries"] >= 1
        assert tainted >= 1  # the retried batch was excluded
        assert ctl["breaches"] == 0  # the spike never steered the law
        assert ctl["ticks"] >= 1  # and the controller loop stayed alive
