"""Tests for the synonym lexicon and Jaccard similarity."""

import pytest

from repro.nlp.synonyms import SynonymLexicon, jaccard


class TestSynonymLexicon:
    def test_add_and_lookup(self):
        lex = SynonymLexicon()
        lex.add("population", "number of people", 0.9)
        assert lex.predicates_for_phrase(("number", "of", "people")) == {"population": 0.9}

    def test_lookup_missing_phrase(self):
        assert SynonymLexicon().predicates_for_phrase(("x",)) == {}

    def test_score_bounds_enforced(self):
        lex = SynonymLexicon()
        with pytest.raises(ValueError):
            lex.add("p", "phrase", 0.0)
        with pytest.raises(ValueError):
            lex.add("p", "phrase", 1.5)

    def test_empty_phrase_rejected(self):
        with pytest.raises(ValueError):
            SynonymLexicon().add("p", "   ")

    def test_repeated_add_keeps_max_score(self):
        lex = SynonymLexicon()
        lex.add("p", "word", 0.5)
        lex.add("p", "word", 0.8)
        lex.add("p", "word", 0.3)
        assert lex.predicates_for_phrase(("word",)) == {"p": 0.8}

    def test_phrase_shared_by_predicates(self):
        lex = SynonymLexicon()
        lex.add("height", "tall", 0.8)
        lex.add("elevation", "tall", 0.4)
        assert lex.predicates_for_phrase(("tall",)) == {"height": 0.8, "elevation": 0.4}

    def test_phrases_for_predicate(self):
        lex = SynonymLexicon()
        lex.add_many("population", ["population", "number of people"])
        assert lex.phrases_for_predicate("population") == {
            ("population",), ("number", "of", "people"),
        }

    def test_max_phrase_length(self):
        lex = SynonymLexicon()
        assert lex.max_phrase_length() == 0
        lex.add("p", "a b c")
        assert lex.max_phrase_length() == 3

    def test_len_counts_associations(self):
        lex = SynonymLexicon()
        lex.add("p1", "word")
        lex.add("p2", "word")
        assert len(lex) == 2


class TestJaccard:
    def test_identical(self):
        assert jaccard(["a", "b"], ["a", "b"]) == 1.0

    def test_disjoint(self):
        assert jaccard(["a"], ["b"]) == 0.0

    def test_partial_overlap(self):
        # {how, many, people} vs {number, of, people}: 1 / 5
        assert jaccard(["how", "many", "people"], ["number", "of", "people"]) == pytest.approx(0.2)

    def test_empty_inputs(self):
        assert jaccard([], []) == 0.0

    def test_duplicates_ignored(self):
        assert jaccard(["a", "a"], ["a"]) == 1.0
