"""``kbqa answer`` CLI contract: deterministic non-crash output for unknown
entities / empty answers (exit 0), nonzero exit only on real failures."""

from repro.cli import main


class TestAnswerErrorHandling:
    def test_unknown_entity_is_not_a_failure(self, capsys):
        code = main(
            ["answer", "--scale", "small",
             "who is the spouse of zorblax the unknowable?"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "A: (no answer)" in out
        assert "answered 0/1" in out

    def test_mixed_batch_reports_deterministically(self, capsys, suite):
        city = next(e for e in suite.world.of_type("city"))
        code = main(
            ["answer", "--scale", "small",
             f"what is the population of {city.name}?",
             "gibberish question about nothing"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert out.count("Q: ") == 2
        assert "answered 1/2" in out

    def test_missing_expansion_file_is_a_real_failure(self, capsys, tmp_path):
        code = main(
            ["answer", "--scale", "small",
             "--expansion", str(tmp_path / "missing.kbqa"), "any question"]
        )
        assert code == 1
        err = capsys.readouterr().err
        assert "kbqa answer: error:" in err

    def test_corrupt_expansion_file_is_a_real_failure(self, capsys, tmp_path):
        bad = tmp_path / "bad.kbqa"
        bad.write_text("this is not an expansion artifact\n")
        code = main(
            ["answer", "--scale", "small", "--expansion", str(bad), "any question"]
        )
        assert code == 1
        assert "kbqa answer: error:" in capsys.readouterr().err

    def test_missing_expansion_fails_cleanly_on_every_training_command(
        self, capsys, tmp_path
    ):
        """--expansion is advertised on all training commands; each must
        fail deterministically, not with a traceback."""
        missing = str(tmp_path / "missing.kbqa")
        for command in (["train", "--model", str(tmp_path / "m.json")],
                        ["demo"], ["decompose"]):
            argv = [command[0], "--scale", "small", "--expansion", missing]
            argv += command[1:]
            if command[0] in ("demo", "decompose"):
                argv.append("any question")
            assert main(argv) == 1, command[0]
            assert f"kbqa {command[0]}: error:" in capsys.readouterr().err

    def test_answer_with_loaded_expansion(self, capsys, tmp_path, suite):
        path = tmp_path / "expansion.kbqa"
        assert main(["expand", "--scale", "small", "--save", str(path)]) == 0
        capsys.readouterr()
        city = next(e for e in suite.world.of_type("city"))
        code = main(
            ["answer", "--scale", "small", "--expansion", str(path),
             f"what is the population of {city.name}?"]
        )
        assert code == 0
        assert "answered 1/1" in capsys.readouterr().out
