"""Tests for valid(k) and the expansion-length selection (Sec 6.3)."""


from repro.core.kselect import choose_k, top_entities_by_frequency, valid_k


class TestTopEntities:
    def test_ordered_by_out_degree(self, suite):
        store = suite.freebase.store
        top = top_entities_by_frequency(store, 10)
        degrees = [store.out_degree(e) for e in top]
        assert degrees == sorted(degrees, reverse=True)

    def test_excludes_cvt_nodes(self, suite):
        top = top_entities_by_frequency(suite.freebase.store, 100)
        assert all(not node.startswith("cvt.") for node in top)

    def test_count_respected(self, suite):
        assert len(top_entities_by_frequency(suite.freebase.store, 5)) == 5


class TestValidK:
    def test_table4_shape_freebase(self, suite):
        """Table 4's KBA shape: valid(2) > valid(1), collapse at k=3."""
        counts = valid_k(suite.freebase.store, suite.infobox, 3, sample_entities=200)
        assert counts[2] > counts[1]
        assert counts[3] < 0.7 * counts[2]
        assert counts[3] > 0  # the surviving CVT relations are real

    def test_table4_shape_dbpedia(self, suite):
        """DBpedia's shape: k=3 collapses to almost nothing (no CVTs)."""
        counts = valid_k(suite.dbpedia.store, suite.infobox, 3, sample_entities=200)
        assert counts[2] > 0
        assert counts[3] < 0.1 * counts[2]

    def test_more_entities_more_valid(self, suite):
        small = valid_k(suite.freebase.store, suite.infobox, 2, sample_entities=50)
        large = valid_k(suite.freebase.store, suite.infobox, 2, sample_entities=200)
        assert large[1] >= small[1]

    def test_keys_cover_all_lengths(self, suite):
        counts = valid_k(suite.freebase.store, suite.infobox, 3, sample_entities=20)
        assert set(counts) == {1, 2, 3}


class TestChooseK:
    def test_paper_choice_is_three(self, suite):
        counts = valid_k(suite.freebase.store, suite.infobox, 3, sample_entities=200)
        assert choose_k(counts) == 3

    def test_zero_tail_excluded(self):
        assert choose_k({1: 100, 2: 120, 3: 0}) == 2

    def test_collapse_included_then_stop(self):
        # the paper keeps k=3 despite the drop (meaningful CVTs survive)
        assert choose_k({1: 100, 2: 120, 3: 20, 4: 15}) == 3

    def test_empty(self):
        assert choose_k({}) == 1

    def test_single_level(self):
        assert choose_k({1: 10}) == 1
