"""Mega-corpus compiler + scenario harness contracts.

* **Streaming equivalence** — the chunked, bounded-memory compile against the
  disk backend must produce byte-for-byte the same knowledge (triples, term
  ids, gold rows) as the identical sequence against the in-memory store:
  streaming is an execution strategy, never a semantic one.
* **Scenario recall** — the four axes run against a small build and the gold
  contract holds: recall 1.0 on skew/churn/temporal, zero wrong answers and
  full abstention on the paraphrase axis, and the manifest's bounded-memory
  accounting (peak resident = anchor + one chunk, not the whole world).
* **Temporal supersession through serve** — a ``/facts`` delete+add pair on a
  live ``kbqa serve`` HTTP front must make the *fresh* fact win on the very
  next ``/answer`` (the write-quiescence seam, end to end).
"""

import json
import random
import urllib.request

import pytest

from repro.core.system import KBQA
from repro.corpus.mega import MegaSpec, compile_mega
from repro.eval.scenarios import ScenarioSpec, run_scenarios
from repro.serve import BackgroundServer, ServeConfig
from repro.suite import build_suite

SMALL = dict(chunk_people=300, chunk_cities=80, gold_per_chunk=12)


def _small_spec(seed: int, triples: int = 6000) -> MegaSpec:
    return MegaSpec(triples=triples, seed=seed, **SMALL)


class TestStreamingEquivalence:
    @pytest.mark.parametrize("seed", random.Random(0x5EED).sample(range(1000), 2))
    def test_disk_and_memory_builds_agree(self, tmp_path, seed):
        spec = _small_spec(seed)
        disk = compile_mega(spec, tmp_path / "disk", backend="disk")
        memory = compile_mega(spec, tmp_path / "memory", backend="memory")
        try:
            # same insertion sequence -> same dense term ids -> identical
            # id-level triple streams, not merely equal decoded sets
            assert sorted(disk.kb.store.triples_ids()) == sorted(
                memory.kb.store.triples_ids()
            )
            assert list(disk.kb.store.dictionary.terms()) == list(
                memory.kb.store.dictionary.terms()
            )
            disk_gold = (tmp_path / "disk" / "gold.jsonl").read_bytes()
            memory_gold = (tmp_path / "memory" / "gold.jsonl").read_bytes()
            assert disk_gold == memory_gold
            for key, value in disk.manifest.items():
                if key in ("backend", "kb_path", "ru_maxrss_kb"):
                    continue
                assert memory.manifest[key] == value, key
        finally:
            disk.kb.store.close()

    def test_resident_bound_is_chunk_shaped(self, tmp_path):
        build = compile_mega(
            _small_spec(seed=7, triples=9000), tmp_path / "m", backend="memory"
        )
        manifest = build.manifest
        chunk_entities = SMALL["chunk_people"] + SMALL["chunk_cities"]
        assert manifest["chunks"] > 1  # actually streamed, not one blob
        assert (
            manifest["peak_resident_entities"]
            == manifest["anchor_entities"] + chunk_entities
        )
        assert manifest["peak_resident_entities"] < manifest["total_entities"]


class TestScenarioRecall:
    @pytest.fixture(scope="class")
    def mega_dir(self, tmp_path_factory):
        out = tmp_path_factory.mktemp("mega")
        build = compile_mega(_small_spec(seed=7, triples=9000), out)
        build.kb.store.close()
        return out

    def test_all_axes_hold_the_gold_contract(self, mega_dir):
        report = run_scenarios(
            mega_dir,
            ScenarioSpec(
                requests=120,
                rate_qps=400.0,
                churn_writes=8,
                temporal_edits=4,
                paraphrase_queries=12,
            ),
        )
        axes = report["axes"]
        for axis in ("skew", "churn", "temporal"):
            assert axes[axis]["recall"] == 1.0, (axis, axes[axis])
            assert axes[axis]["checked"] > 0
            assert axes[axis]["p99_ms"] is not None
        assert axes["temporal"]["stale_after_edit"] == 0
        assert axes["churn"]["writes_applied"] == 8
        para = axes["paraphrase"]
        assert para["incorrect"] == 0  # benign rewrites answer correctly
        assert para["heldout_wrong"] == 0  # held-out surfaces never guess
        assert para["abstention_rate"] == 1.0

    def test_memory_backend_build_is_rejected(self, tmp_path):
        build = compile_mega(_small_spec(seed=7), tmp_path / "m", backend="memory")
        with pytest.raises(ValueError, match="kb_path"):
            run_scenarios(tmp_path / "m", ScenarioSpec(axes=("skew",)))
        assert build.manifest["kb_path"] is None


def _post(url: str, payload: dict) -> tuple[int, dict]:
    request = urllib.request.Request(
        url,
        data=json.dumps(payload).encode("utf-8"),
        headers={"Content-Type": "application/json"},
        method="POST",
    )
    with urllib.request.urlopen(request) as response:
        return response.status, json.loads(response.read().decode("utf-8"))


class TestTemporalSupersessionThroughServe:
    def test_fresh_fact_wins_after_facts_supersession(self):
        suite = build_suite("small", seed=7)
        system = KBQA.train(suite.freebase, suite.corpus, suite.conceptualizer)
        # pick a person with exactly one residence and a different target city
        world = suite.world
        person = next(
            e
            for e in world.of_type("person")
            if len(e.get_fact("residence")) == 1
        )
        old_city = world.entity(person.get_fact("residence")[0])
        new_city = next(
            c for c in world.of_type("city") if c.node != old_city.node
        )
        question = f"where does {person.name} live?"
        with BackgroundServer(system, ServeConfig(workers=2, max_batch=8)) as bg:
            _status, before = _post(bg.url + "/answer", {"question": question})
            assert before["answered"] is True
            assert before["values"] == [old_city.name]

            for op, obj in (("delete", old_city.node), ("add", new_city.node)):
                status, body = _post(
                    bg.url + "/facts",
                    {
                        "op": op,
                        "subject": person.node,
                        "predicate": "residence",
                        "object": obj,
                    },
                )
                assert status == 200
                assert body["changed"] is True

            _status, after = _post(bg.url + "/answer", {"question": question})
            assert after["answered"] is True
            assert after["values"] == [new_city.name]  # the fresh fact wins
