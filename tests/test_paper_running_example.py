"""The paper's running example, end to end.

Builds the exact toy KB of Figure 1 and the QA corpus of Table 3, then
verifies the behaviours the paper walks through:

* Example 1 — the generative chain answers q3 ('how many people are there
  in honolulu?') with 390k via the population predicate;
* Example 2 — entity-value extraction pulls (obama, 1961) and the
  refinement drops the (obama, politician) noise pair;
* Sec 1.1 / Table 1 — the spouse intent resolves only through the expanded
  predicate ``marriage -> person -> name``;
* Example 3/4 + Algorithm 2 — question f© ('when was barack obama's wife
  born?') decomposes into (barack obama's wife, when was $e born?) and the
  chain produces 1964.

The corpus is Table 3 plus the two spouse questions a 41M-pair corpus would
contain thousands of (the toy three-pair corpus cannot carry the spouse
template on its own).
"""

import pytest

from repro.core.em import EMConfig
from repro.core.learner import LearnerConfig
from repro.core.system import KBQA, KBQAConfig
from repro.corpus.qa import QACorpus, QAPair
from repro.data.compile import CompiledKB
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal
from repro.taxonomy.conceptualizer import Conceptualizer
from repro.taxonomy.isa import IsANetwork


@pytest.fixture(scope="module")
def figure1_kb() -> CompiledKB:
    """Figure 1's graph, with node ids a/b/c/d as printed in the paper."""
    store = TripleStore()
    store.add("a", "name", make_literal("barack obama"))
    store.add("a", "dob", make_literal("1961"))
    store.add("a", "pob", "d")
    store.add("a", "profession", "prof")
    store.add("prof", "name", make_literal("politician"))
    store.add("a", "category", "$person")
    store.add("a", "category", "$politician")
    store.add("a", "marriage", "b")
    store.add("b", "date", make_literal("1992"))
    store.add("b", "category", "$event")
    store.add("b", "person", "c")
    store.add("c", "name", make_literal("michelle obama"))
    store.add("c", "dob", make_literal("1964"))
    store.add("c", "category", "$person")
    store.add("d", "name", make_literal("honolulu"))
    store.add("d", "population", make_literal("390000"))
    store.add("d", "category", "$city")

    path_for_intent = {
        "dob": PredicatePath(("dob",)),
        "population": PredicatePath(("population",)),
        "spouse": PredicatePath(("marriage", "person", "name")),
        "pob": PredicatePath(("pob", "name")),
        "profession": PredicatePath(("profession", "name")),
    }
    return CompiledKB(
        kind="freebase",
        store=store,
        world=None,  # the toy KB has no World behind it
        path_for_intent=path_for_intent,
        intent_for_path={str(p): i for i, p in path_for_intent.items()},
        gazetteer={
            "barack obama": ["a"],
            "michelle obama": ["c"],
            "honolulu": ["d"],
        },
    )


@pytest.fixture(scope="module")
def table3_corpus() -> QACorpus:
    return QACorpus([
        # Table 3 verbatim.
        QAPair("q1", "when was barack obama born?", "the politician was born in 1961."),
        QAPair("q2", "when was barack obama born?", "he was born in 1961."),
        QAPair("q3", "how many people are there in honolulu?", "it 's 390000."),
        # The spouse evidence a web-scale corpus supplies.
        QAPair("q4", "who is barack obama 's wife?", "michelle obama."),
        QAPair("q5", "barack obama 's wife", "michelle obama of course."),
        QAPair("q6", "who is michelle obama 's husband?", "barack obama."),
    ])


@pytest.fixture(scope="module")
def toy_conceptualizer() -> Conceptualizer:
    taxonomy = IsANetwork()
    taxonomy.add("a", "$person", 6.0)
    taxonomy.add("a", "$politician", 4.0)
    taxonomy.add("c", "$person", 8.0)
    taxonomy.add("d", "$city", 9.0)
    taxonomy.add("d", "$location", 1.0)
    conceptualizer = Conceptualizer(taxonomy)
    conceptualizer.observe_text("$city", "how many people are there in population")
    conceptualizer.observe_text("$person", "when was born wife husband")
    return conceptualizer


@pytest.fixture(scope="module")
def toy_system(figure1_kb, table3_corpus, toy_conceptualizer) -> KBQA:
    config = KBQAConfig(
        learner=LearnerConfig(em=EMConfig(max_iterations=10)),
        pattern_max_questions=None,
    )
    return KBQA.train(figure1_kb, table3_corpus, toy_conceptualizer, config)


class TestExample1:
    def test_honolulu_population(self, toy_system):
        """Example 1's generative chain end to end."""
        result = toy_system.answer("how many people are there in honolulu?")
        assert result.answered
        assert result.value == "390000"
        assert result.entity == "d"
        assert result.predicate == PredicatePath.single("population")
        assert result.template == "how many people are there in $city ?"


class TestExample2:
    def test_refinement_filters_politician(self, toy_system):
        """(obama, politician) extracted then filtered; (obama, 1961) kept."""
        model = toy_system.model
        dob_template = "when was $person born ?"
        assert dob_template in model
        best_path, prob = model.best_path(dob_template)
        assert best_path == PredicatePath.single("dob")
        assert prob > 0.9
        # no template may map the birthday question to the profession path
        profession = PredicatePath(("profession", "name"))
        for template in model.templates():
            if "born" in template:
                assert profession not in model.predicates_for(template)


class TestExpandedSpouse:
    def test_spouse_only_via_marriage_path(self, toy_system, figure1_kb):
        """Table 1 row e©: the wife question needs the 3-edge path."""
        assert not figure1_kb.store.objects("a", "spouse")
        result = toy_system.answer("who is barack obama 's wife?")
        assert result.answered
        assert result.value == "michelle obama"
        assert result.predicate == PredicatePath(("marriage", "person", "name"))


class TestQuestionF:
    def test_decomposition_matches_example3(self, toy_system):
        decomposition = toy_system.decompose("when was barack obama 's wife born?")
        assert decomposition.sequence == (
            "barack obama 's wife",
            "when was $e born ?",
        )
        assert decomposition.score > 0.0

    def test_invalid_sequence_rejected(self, toy_system):
        """Example 3's invalid split (q̌0 = 'was barack obama's wife born')
        must lose: 'when $e ?' has fv = 0 in the corpus (Example 4)."""
        stats = toy_system.decomposer.statistics
        assert stats.validity("when $e ?".split()) == 0.0
        assert stats.validity("when was $e born ?".split()) > 0.0

    def test_chained_answer_is_1964(self, toy_system):
        answer = toy_system.answer_complex("when was barack obama 's wife born?")
        assert answer.answered
        assert answer.value == "1964"
        assert [s.value for s in answer.steps] == ["michelle obama", "1964"]


class TestTable1Coverage:
    """Every natural-language row of Table 1 the toy corpus supports."""

    @pytest.mark.parametrize("question,expected", [
        ("how many people are there in honolulu?", "390000"),
        ("when was barack obama born?", "1961"),
        ("who is barack obama 's wife?", "michelle obama"),
        ("when was barack obama 's wife born?", "1964"),
    ])
    def test_row(self, toy_system, question, expected):
        answer = toy_system.answer_complex(question)
        assert answer.answered, question
        assert answer.value == expected
