"""Equivalence tests for the ID-native hot paths.

The ID-native expansion scan, the array-based EM and the cached batch
answering API are pure performance refactors: each must produce output
identical to its reference implementation (the pre-refactor code, preserved
as ``expand_predicates_baseline`` / ``run_em_reference``).
"""

import random

import pytest

from repro.core.em import (
    EMConfig,
    EncodedObservations,
    run_em,
    run_em_reference,
)
from repro.core.learner import LearnerConfig, OfflineLearner
from repro.kb.expansion import expand_predicates, expand_predicates_baseline
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


def _triple_set(expanded):
    return {(s, str(p), o) for s, p, o in expanded.triples()}


class TestExpansionEquivalence:
    def test_identical_triples_on_toy_kb(self):
        kb = TripleStore()
        kb.add("a", "name", make_literal("alice"))
        kb.add("a", "marriage", "cvt1")
        kb.add("cvt1", "person", "b")
        kb.add("cvt1", "date", make_literal("1990"))
        kb.add("b", "name", make_literal("bob"))
        kb.add("b", "dob", make_literal("1960"))
        kb.add("a", "pob", "city")
        kb.add("city", "name", make_literal("springfield"))
        kb.add("city", "mayor", "m")
        kb.add("m", "name", make_literal("mel"))
        for max_length in (1, 2, 3):
            fast = expand_predicates(kb, ["a", "city"], max_length=max_length)
            slow = expand_predicates_baseline(kb, ["a", "city"], max_length=max_length)
            assert _triple_set(fast) == _triple_set(slow)
            assert len(fast) == len(slow)
            assert fast.stats() == slow.stats()

    def test_identical_triples_on_seed_fixture(self, suite):
        store = suite.freebase.store
        seeds = [e.node for e in suite.world.of_type("person")[:12]]
        seeds += [e.node for e in suite.world.of_type("city")[:6]]
        fast = expand_predicates(store, seeds, max_length=3)
        slow = expand_predicates_baseline(store, seeds, max_length=3)
        assert len(fast) == len(slow) > 0
        assert _triple_set(fast) == _triple_set(slow)
        assert fast.distinct_paths() == slow.distinct_paths()
        assert set(fast.subjects()) == set(slow.subjects())

    def test_custom_tail_whitelist_equivalent(self, suite):
        store = suite.freebase.store
        seeds = [e.node for e in suite.world.of_type("person")[:8]]
        tails = frozenset({"dob", "name"})
        fast = expand_predicates(store, seeds, max_length=2, tail_predicates=tails)
        slow = expand_predicates_baseline(store, seeds, max_length=2, tail_predicates=tails)
        assert _triple_set(fast) == _triple_set(slow)


class TestFrozenViews:
    """``objects``/``paths_between`` return shared frozen views, not copies."""

    def test_objects_returns_same_object(self, suite):
        store = suite.freebase.store
        seeds = [e.node for e in suite.world.of_type("person")[:4]]
        expanded = expand_predicates(store, seeds, max_length=3)
        subject, path, _obj = next(expanded.triples())
        first = expanded.objects(subject, path)
        assert isinstance(first, frozenset)
        assert expanded.objects(subject, path) is first

    def test_paths_between_returns_same_object(self, suite):
        store = suite.freebase.store
        seeds = [e.node for e in suite.world.of_type("person")[:4]]
        expanded = expand_predicates(store, seeds, max_length=3)
        subject, _path, obj = next(expanded.triples())
        first = expanded.paths_between(subject, obj)
        assert isinstance(first, frozenset)
        assert expanded.paths_between(subject, obj) is first

    def test_record_invalidates_frozen_view(self):
        from repro.kb.expansion import ExpandedStore

        store = ExpandedStore(max_length=3)
        path = PredicatePath.single("p")
        store.record("s", path, "o1")
        assert store.objects("s", path) == {"o1"}
        store.record("s", path, "o2")
        assert store.objects("s", path) == {"o1", "o2"}


class TestStoreStats:
    def test_incremental_resource_count_matches_full_scan(self, suite):
        from repro.kb.triple import is_literal

        store = suite.freebase.store
        recomputed = sum(1 for term in store.dictionary.terms() if not is_literal(term))
        assert store.stats()["resources"] == recomputed

    def test_resource_count_tracks_additions(self):
        kb = TripleStore()
        kb.add("s", "p", make_literal("lit"))
        assert kb.stats()["resources"] == 2  # s and p; the literal is excluded
        kb.add("s", "p", "o")  # one new resource
        kb.add("s", "p", "o")  # duplicate: no change
        assert kb.stats()["resources"] == 3

    def test_resource_count_sees_shared_dictionary_interning(self):
        """Terms interned through a shared-dictionary ExpandedStore (not via
        ``add``) must still be reflected in the resource count."""
        kb = TripleStore()
        kb.add("s", "p", "o")
        assert kb.stats()["resources"] == 3
        expanded = expand_predicates(kb, ["s"], max_length=1)
        expanded.record("brand-new", PredicatePath.single("p2"), make_literal("x"))
        assert kb.stats()["resources"] == 5  # brand-new and p2; literal excluded


def _random_observations(rng, n):
    out = []
    for _ in range(n):
        out.append(
            [
                (rng.randint(0, 5), rng.randint(0, 9), rng.choice([0.0, rng.random()]))
                for _ in range(rng.randint(1, 5))
            ]
        )
    return out


class TestEMEquivalence:
    def _assert_same(self, fast, ref):
        assert fast.iterations == ref.iterations
        assert len(fast.log_likelihood) == len(ref.log_likelihood)
        for a, b in zip(fast.log_likelihood, ref.log_likelihood):
            assert a == pytest.approx(b, abs=1e-9)
        assert fast.theta.keys() == ref.theta.keys()
        for template_id, row in ref.theta.items():
            assert fast.theta[template_id].keys() == row.keys()
            for path_id, prob in row.items():
                assert fast.theta[template_id][path_id] == pytest.approx(prob, abs=1e-9)
        assert fast.template_support.keys() == ref.template_support.keys()
        for template_id, support in ref.template_support.items():
            assert fast.template_support[template_id] == pytest.approx(support, abs=1e-9)

    def test_random_instances_match_reference(self):
        rng = random.Random(11)
        for _ in range(10):
            observations = _random_observations(rng, rng.randint(1, 30))
            config = EMConfig(max_iterations=15, tolerance=0.0)
            self._assert_same(
                run_em(observations, config), run_em_reference(observations, config)
            )

    def test_default_config_match_reference(self):
        rng = random.Random(5)
        observations = _random_observations(rng, 40)
        self._assert_same(run_em(observations), run_em_reference(observations))

    def test_seed_fixture_encoding_matches_reference(self, suite):
        """θ learned from the real offline encoding is identical either way."""
        learner = OfflineLearner(
            suite.freebase, suite.conceptualizer, LearnerConfig()
        )
        prepared = learner.encode_corpus(suite.corpus)
        encoded, _templates, _paths = prepared.encoded
        assert len(encoded) > 0
        config = EMConfig(max_iterations=25, tolerance=0.0)
        self._assert_same(run_em(encoded, config), run_em_reference(encoded, config))

    def test_encoded_roundtrip(self):
        observations = [[(0, 1, 0.5), (2, 3, 0.25)], [(1, 1, 1.0)]]
        encoded = EncodedObservations.from_observations(observations)
        assert len(encoded) == 2
        assert encoded.n_candidates == 3
        assert encoded.to_lists() == observations


class TestAnswerManyEquivalence:
    def _questions(self, suite):
        questions = [q.question for q in suite.benchmark("qald3").bfqs()][:20]
        questions += [
            "what should i eat tonight?",  # chitchat: no answer
            questions[0],  # duplicate: exercised through the answer cache
            questions[0].upper(),  # normalizes to the same cache key
        ]
        return questions

    def test_batch_equals_sequential(self, suite, kbqa_fb):
        questions = self._questions(suite)
        batch = kbqa_fb.answer_many(questions)
        sequential = [kbqa_fb.answer(q) for q in questions]
        assert batch == sequential
        assert [r.question for r in batch] == questions

    def test_batch_equals_uncached_answerer(self, suite, kbqa_fb):
        """The caches must never change an answer, only its latency."""
        from repro.core.online import OnlineAnswerer

        cold = OnlineAnswerer(
            kbqa_fb.learn_result.kbview,
            kbqa_fb.learn_result.ner,
            kbqa_fb.conceptualizer,
            kbqa_fb.model,
            max_concepts=kbqa_fb.config.max_concepts_online,
            answer_cache_size=0,
            lookup_cache_size=0,
            precompute=False,
        )
        questions = self._questions(suite)
        assert kbqa_fb.answer_many(questions) == [cold.answer(q) for q in questions]
