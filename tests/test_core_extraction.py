"""Tests for entity-value extraction (Sec 4.1) and the value index."""

import pytest

from repro.core.extraction import (
    ExtractionConfig,
    ValueIndex,
    extract_observations,
)
from repro.core.kbview import KBView
from repro.kb.expansion import expand_predicates
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal
from repro.nlp.ner import EntityRecognizer
from repro.nlp.question_class import AnswerType
from repro.nlp.tokenizer import tokenize


@pytest.fixture
def figure1_setup():
    """Figure 1 KB + NER + value index, the paper's running example."""
    kb = TripleStore()
    kb.add("a", "name", make_literal("barack obama"))
    kb.add("a", "dob", make_literal("1961"))
    kb.add("a", "profession", "prof")
    kb.add("prof", "name", make_literal("politician"))
    kb.add("a", "marriage", "cvt")
    kb.add("cvt", "person", "c")
    kb.add("c", "name", make_literal("michelle obama"))
    kb.add("c", "dob", make_literal("1964"))
    kb.add("d", "name", make_literal("honolulu"))
    kb.add("d", "population", make_literal("390000"))
    expanded = expand_predicates(kb, ["a", "c", "d"], max_length=3)
    view = KBView(kb, expanded)
    ner = EntityRecognizer({
        "barack obama": ["a"], "michelle obama": ["c"], "honolulu": ["d"],
    })
    index = ValueIndex(kb)

    def answer_type_of(path):
        known = {
            "dob": AnswerType.DATE,
            "population": AnswerType.NUMERIC,
            "marriage->person->name": AnswerType.HUMAN,
            "profession->name": AnswerType.ENTITY,
        }
        return known.get(str(path), AnswerType.UNKNOWN)

    return kb, view, ner, index, answer_type_of


class TestValueIndex:
    def test_finds_literal_span(self, figure1_setup):
        _kb, _view, _ner, index, _at = figure1_setup
        values = index.find_values(tokenize("he was born in 1961."))
        assert make_literal("1961") in values

    def test_finds_multi_token_name(self, figure1_setup):
        _kb, _view, _ner, index, _at = figure1_setup
        values = index.find_values(tokenize("his wife is michelle obama."))
        assert make_literal("michelle obama") in values

    def test_deduplicates(self, figure1_setup):
        _kb, _view, _ner, index, _at = figure1_setup
        values = index.find_values(tokenize("1961 and 1961 again"))
        assert values.count(make_literal("1961")) == 1

    def test_spans_carry_positions(self, figure1_setup):
        _kb, _view, _ner, index, _at = figure1_setup
        spans = index.find_value_spans(tokenize("born in 1961 in honolulu"))
        positions = {(s, e) for s, e, _t in spans}
        assert (2, 3) in positions
        assert (4, 5) in positions

    def test_no_match(self, figure1_setup):
        _kb, _view, _ner, index, _at = figure1_setup
        assert index.find_values(tokenize("nothing to see here")) == []


class TestExtraction:
    def run(self, setup, pairs, use_refinement=True):
        _kb, view, ner, index, answer_type_of = setup
        return extract_observations(
            pairs, view, ner, index, answer_type_of,
            ExtractionConfig(use_refinement=use_refinement),
        )

    def test_basic_extraction(self, figure1_setup):
        observations, stats = self.run(figure1_setup, [
            ("when was barack obama born?", "the politician was born in 1961."),
        ])
        assert stats.qa_pairs == 1
        values = {o.value for o in observations}
        assert make_literal("1961") in values

    def test_example2_refinement_filters_profession(self, figure1_setup):
        """Example 2: (obama, politician) must be filtered for a birthday
        question, (obama, 1961) must survive."""
        observations, stats = self.run(figure1_setup, [
            ("when was barack obama born?", "the politician was born in 1961."),
        ])
        values = {o.value for o in observations}
        assert make_literal("politician") not in values
        assert stats.refinement_rejections >= 1

    def test_without_refinement_profession_survives(self, figure1_setup):
        observations, _stats = self.run(figure1_setup, [
            ("when was barack obama born?", "the politician was born in 1961."),
        ], use_refinement=False)
        values = {o.value for o in observations}
        assert make_literal("politician") in values

    def test_unconnected_value_dropped(self, figure1_setup):
        """Eq 8: a value with no KB connection to the entity is not a pair."""
        observations, _stats = self.run(figure1_setup, [
            ("when was barack obama born?", "in 390000."),  # honolulu's population
        ])
        assert observations == []

    def test_spouse_through_expanded_predicate(self, figure1_setup):
        observations, _stats = self.run(figure1_setup, [
            ("who is the wife of barack obama?", "michelle obama."),
        ])
        assert len(observations) == 1
        assert PredicatePath(("marriage", "person", "name")) in observations[0].paths

    def test_entity_weight_uniform_over_entities(self, figure1_setup):
        """Eq 4: P(e|q) uniform over entities appearing in EV pairs."""
        observations, _stats = self.run(figure1_setup, [
            ("did barack obama meet michelle obama in 1961?", "yes, in 1961."),
        ])
        assert observations
        # both entities connect to 1961 via dob... barack via dob(1961);
        # michelle's dob is 1964 so only barack survives -> weight 1.0
        entities = {o.entity for o in observations}
        for o in observations:
            assert o.entity_weight == pytest.approx(1.0 / len(entities))

    def test_no_mention_no_observation(self, figure1_setup):
        observations, stats = self.run(figure1_setup, [
            ("what should i eat tonight?", "pizza, born in 1961."),
        ])
        assert observations == []
        assert stats.pairs_with_mentions == 0

    def test_value_cap_respected(self, figure1_setup):
        _kb, view, ner, index, answer_type_of = figure1_setup
        long_answer = " ".join(["1961", "1964", "390000"] * 5)
        _obs, stats = extract_observations(
            [("when was barack obama born?", long_answer)],
            view, ner, index, answer_type_of,
            ExtractionConfig(max_values_per_answer=2),
        )
        # only the first two distinct values considered
        assert stats.candidate_ev <= 2

    def test_corpus_level_yield(self, suite, kbqa_fb):
        """On the full small corpus, most factoid pairs must yield
        observations (the signal EM learns from)."""
        stats = kbqa_fb.learn_result.extraction
        factoid = sum(1 for p in suite.corpus if p.meta.get("kind") == "factoid")
        assert stats.refined_ev > 0.5 * factoid
