"""Tests for the unified direct+expanded KB view."""

import pytest

from repro.core.kbview import KBView
from repro.kb.expansion import expand_predicates
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


@pytest.fixture
def view_setup():
    kb = TripleStore()
    kb.add("a", "dob", make_literal("1961"))
    kb.add("a", "marriage", "cvt")
    kb.add("cvt", "person", "c")
    kb.add("c", "name", make_literal("michelle"))
    kb.add("b", "marriage", "cvt2")
    kb.add("cvt2", "person", "a")
    kb.add("a", "name", make_literal("barack"))
    expanded = expand_predicates(kb, ["a"], max_length=3)  # b NOT a seed
    return kb, KBView(kb, expanded)


SPOUSE = PredicatePath(("marriage", "person", "name"))


class TestKBView:
    def test_direct_paths_between(self, view_setup):
        _kb, view = view_setup
        assert PredicatePath.single("dob") in view.paths_between("a", make_literal("1961"))

    def test_expanded_paths_between(self, view_setup):
        _kb, view = view_setup
        assert SPOUSE in view.paths_between("a", make_literal("michelle"))

    def test_values_direct(self, view_setup):
        _kb, view = view_setup
        assert view.values("a", PredicatePath.single("dob")) == {make_literal("1961")}

    def test_values_expanded_materialized(self, view_setup):
        _kb, view = view_setup
        assert view.values("a", SPOUSE) == {make_literal("michelle")}

    def test_values_fallback_traversal_for_non_seed(self, view_setup):
        """Entity b was not a BFS seed: values must still resolve by live
        traversal (online questions mention unseen entities)."""
        _kb, view = view_setup
        assert view.values("b", SPOUSE) == {make_literal("barack")}

    def test_value_probability_uniform(self, view_setup):
        kb, view = view_setup
        kb.add("a", "dob", make_literal("1962"))  # pretend conflicting fact
        prob = view.value_probability("a", PredicatePath.single("dob"), make_literal("1961"))
        assert prob == pytest.approx(0.5)

    def test_value_probability_zero_for_absent(self, view_setup):
        _kb, view = view_setup
        assert view.value_probability("a", PredicatePath.single("dob"), make_literal("2000")) == 0.0

    def test_without_expansion_only_direct(self, view_setup):
        kb, _view = view_setup
        bare = KBView(kb)
        assert bare.max_path_length == 1
        assert bare.paths_between("a", make_literal("michelle")) == set()
        # explicit path still traversable on demand
        assert bare.values("a", SPOUSE) == {make_literal("michelle")}

    def test_max_path_length_from_expansion(self, view_setup):
        _kb, view = view_setup
        assert view.max_path_length == 3

    def test_has_entity(self, view_setup):
        _kb, view = view_setup
        assert view.has_entity("a")
        assert not view.has_entity("ghost")
