"""Tests for the basic-graph-pattern query evaluator."""

import pytest

from repro.kb.query import is_variable, select, solve
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


@pytest.fixture
def kb() -> TripleStore:
    store = TripleStore()
    store.add("a", "name", make_literal("barack obama"))
    store.add("a", "pob", "d")
    store.add("a", "dob", make_literal("1961"))
    store.add("c", "name", make_literal("michelle obama"))
    store.add("c", "pob", "d")
    store.add("d", "name", make_literal("honolulu"))
    store.add("d", "population", make_literal("390000"))
    store.add("e", "name", make_literal("springfield"))
    store.add("x", "pob", "e")
    return store


class TestSinglePattern:
    def test_fully_ground_true(self, kb):
        assert solve(kb, [("a", "pob", "d")]) == [{}]

    def test_fully_ground_false(self, kb):
        assert solve(kb, [("a", "pob", "e")]) == []

    def test_object_variable(self, kb):
        result = solve(kb, [("a", "pob", "?c")])
        assert result == [{"?c": "d"}]

    def test_subject_variable(self, kb):
        result = solve(kb, [("?p", "pob", "d")])
        assert {frozenset(b.items()) for b in result} == {
            frozenset({("?p", "a")}), frozenset({("?p", "c")}),
        }

    def test_predicate_variable(self, kb):
        result = solve(kb, [("a", "?rel", "d")])
        assert result == [{"?rel": "pob"}]

    def test_subject_bound_rest_free(self, kb):
        result = solve(kb, [("a", "?p", "?o")])
        assert len(result) == 3
        assert {"?p": "pob", "?o": "d"} in result

    def test_full_scan(self, kb):
        result = solve(kb, [("?s", "?p", "?o")])
        assert len(result) == len(kb)

    def test_repeated_variable_within_pattern(self, kb):
        kb.add("loop", "self", "loop")
        result = solve(kb, [("?x", "self", "?x")])
        assert result == [{"?x": "loop"}]


class TestConjunction:
    def test_two_hop_join(self, kb):
        """People born in the city named honolulu."""
        patterns = [
            ("?person", "pob", "?city"),
            ("?city", "name", make_literal("honolulu")),
        ]
        people = {b["?person"] for b in solve(kb, patterns)}
        assert people == {"a", "c"}

    def test_join_respects_shared_variables(self, kb):
        patterns = [
            ("?person", "pob", "?city"),
            ("?city", "population", "?pop"),
        ]
        result = solve(kb, patterns)
        # only d has a population; x's city e does not
        assert {b["?person"] for b in result} == {"a", "c"}
        assert all(b["?pop"] == make_literal("390000") for b in result)

    def test_unsatisfiable_conjunction(self, kb):
        patterns = [
            ("?p", "pob", "?c"),
            ("?c", "name", make_literal("nowhere")),
        ]
        assert solve(kb, patterns) == []

    def test_limit(self, kb):
        result = solve(kb, [("?s", "?p", "?o")], limit=3)
        assert len(result) == 3

    def test_malformed_pattern_rejected(self, kb):
        with pytest.raises(ValueError):
            solve(kb, [("a", "pob")])  # type: ignore[list-item]


class TestSelect:
    def test_projection(self, kb):
        rows = select(
            kb,
            [("?p", "pob", "?c"), ("?c", "name", make_literal("honolulu"))],
            ["?p"],
        )
        assert set(rows) == {("a",), ("c",)}

    def test_distinct(self, kb):
        kb.add("a", "residence", "d")
        rows = select(kb, [("a", "?rel", "d")], ["?rel"])
        assert sorted(rows) == [("pob",), ("residence",)]
        rows_projected = select(kb, [("a", "?rel", "d")], [])
        assert rows_projected == [()]  # all bindings project to one row

    def test_limit(self, kb):
        rows = select(kb, [("?s", "name", "?n")], ["?s"], limit=2)
        assert len(rows) == 2


class TestOnCompiledKB:
    def test_spouse_query_through_cvt(self, suite):
        """The Figure 1 query: names of spouses, via the marriage CVT."""
        from tests.conftest import pick_entity

        person = pick_entity(suite.world, "person", "spouse")
        patterns = [
            (person.node, "marriage", "?cvt"),
            ("?cvt", "person", "?spouse"),
            ("?spouse", "name", "?name"),
        ]
        names = {row[0][1:] for row in select(suite.freebase.store, patterns, ["?name"])}
        assert names == suite.world.gold_values(person.node, "spouse")

    def test_all_cities_of_country(self, suite):
        # mountains share the 'country' predicate, so the category pattern
        # is load-bearing here
        country = suite.world.of_type("country")[0]
        patterns = [
            ("?city", "country", country.node),
            ("?city", "category", "$city"),
            ("?city", "name", "?name"),
        ]
        names = {row[0][1:] for row in select(suite.freebase.store, patterns, ["?name"])}
        expected = {
            c.name for c in suite.world.of_type("city")
            if c.get_fact("located_country") == (country.node,)
        }
        assert names == expected


class TestHelpers:
    def test_is_variable(self):
        assert is_variable("?x")
        assert not is_variable("x")
