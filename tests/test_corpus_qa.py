"""Tests for QA containers and the corpus generator."""

import pytest

from repro.corpus.generator import CorpusConfig, generate_corpus
from repro.corpus.qa import QACorpus, QAPair
from repro.corpus.surface import SURFACES, held_out_surfaces, train_surfaces
from repro.data.world import SCHEMA_BY_INTENT


class TestQAPair:
    def test_json_roundtrip(self):
        pair = QAPair("q1", "when was obama born?", "in 1961.", {"intent": "dob"})
        restored = QAPair.from_json(pair.to_json())
        assert restored == pair
        assert restored.meta == {"intent": "dob"}

    def test_meta_not_in_equality(self):
        a = QAPair("q1", "q?", "a.", {"x": 1})
        b = QAPair("q1", "q?", "a.", {"x": 2})
        assert a == b


class TestQACorpus:
    def test_save_load_roundtrip(self, tmp_path):
        corpus = QACorpus([QAPair(f"q{i}", f"question {i}?", f"answer {i}.") for i in range(5)])
        path = tmp_path / "corpus.jsonl"
        assert corpus.save(path) == 5
        loaded = QACorpus.load(path)
        assert len(loaded) == 5
        assert loaded[0] == corpus[0]

    def test_filter(self):
        corpus = QACorpus([QAPair("a", "x?", "y."), QAPair("b", "z?", "w.")])
        filtered = corpus.filter(lambda p: p.qid == "a")
        assert len(filtered) == 1

    def test_head(self):
        corpus = QACorpus([QAPair(str(i), "q?", "a.") for i in range(10)])
        assert len(corpus.head(3)) == 3

    def test_questions_iterator(self):
        corpus = QACorpus([QAPair("a", "x?", "y.")])
        assert list(corpus.questions()) == ["x?"]


class TestSurfaceBank:
    def test_every_intent_has_surfaces(self):
        for intent in SCHEMA_BY_INTENT:
            assert intent in SURFACES, f"no surfaces for {intent}"
            assert train_surfaces(intent), f"no train surfaces for {intent}"

    def test_every_intent_has_heldout_surface(self):
        for intent in SCHEMA_BY_INTENT:
            assert held_out_surfaces(intent), f"no held-out surface for {intent}"

    def test_surfaces_have_entity_slot(self):
        for intent, surfaces in SURFACES.items():
            for surface in surfaces:
                assert "{e}" in surface.text, (intent, surface.text)

    def test_ambiguous_surface_shared(self):
        population = {s.text for s in SURFACES["population"]}
        area = {s.text for s in SURFACES["area"]}
        assert "how big is {e}?" in population & area

    def test_train_and_test_disjoint(self):
        for intent in SURFACES:
            train = {s.text for s in train_surfaces(intent)}
            test = {s.text for s in held_out_surfaces(intent)}
            assert not train & test


class TestGenerateCorpus:
    def test_deterministic(self, world):
        config = CorpusConfig.small(seed=5)
        a = generate_corpus(world, config)
        b = generate_corpus(world, config)
        assert [p.question for p in a] == [p.question for p in b]
        assert [p.answer for p in a] == [p.answer for p in b]

    def test_target_size(self, corpus):
        assert len(corpus) == 4000

    def test_factoid_pairs_embed_entity_name(self, world, corpus):
        for pair in corpus.pairs[:300]:
            if pair.meta.get("kind") != "factoid":
                continue
            name = world.name_of(pair.meta["entity"])
            assert name in pair.question

    def test_clean_answers_contain_gold_value(self, corpus):
        checked = 0
        for pair in corpus.pairs:
            if pair.meta.get("kind") != "factoid" or pair.meta.get("wrong"):
                continue
            values = pair.meta["values"]
            assert any(v in pair.answer for v in values), pair.answer
            checked += 1
            if checked >= 300:
                break
        assert checked == 300

    def test_noise_rates_roughly_respected(self, corpus):
        n = len(corpus)
        chitchat = sum(1 for p in corpus if p.meta.get("kind") == "chitchat")
        wrong = sum(1 for p in corpus if p.meta.get("wrong"))
        assert 0.02 * n < chitchat < 0.09 * n
        assert 0.01 * n < wrong < 0.08 * n

    def test_rare_intents_underrepresented(self, corpus):
        counts = corpus.intent_counts()
        assert counts.get("flows_through", 0) < counts["population"] / 5

    def test_test_only_surfaces_never_used(self, corpus):
        used = {p.meta["surface"] for p in corpus if p.meta.get("kind") == "factoid"}
        for intent in SURFACES:
            for surface in held_out_surfaces(intent):
                assert surface.text not in used

    def test_example2_trap_present(self, corpus):
        """Some dob answers must mention the profession (Example 2)."""
        professions = {"politician", "actor", "scientist", "musician", "author"}
        found = any(
            p.meta.get("intent") == "dob" and any(prof in p.answer for prof in professions)
            for p in corpus
        )
        assert found

    def test_empty_world_rejected(self):
        from repro.data.world import World, WorldConfig

        empty = World(WorldConfig.small())
        with pytest.raises(ValueError):
            generate_corpus(empty, CorpusConfig.small())
