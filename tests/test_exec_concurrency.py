"""Process-pool serving under churn: freshness, stress, clean shutdown.

Extends the ``tests/test_serve.py`` scripted-target patterns across the
process boundary.  The hard invariant under test: a request admitted after
a KB mutation + invalidation can never observe a pre-mutation answer, even
though process workers evaluate against *frozen snapshot copies* — the
epoch-tagged refreeze protocol (`repro.exec.snapshot`) must re-freeze from
the live target before any stale batch re-evaluates.

Cross-process timing windows are held open deterministically with sentinel
files (a worker process cannot share a ``threading.Event``): the worker
reports "mid-batch" by writing a file and blocks until the test writes the
release file.

Shutdown hygiene: stopping an answerer (or closing an executor) must join
every worker — ``multiprocessing.active_children()`` is the leak detector —
and repeated start/stop cycles must not accumulate processes or strand
queued requests.
"""

from __future__ import annotations

import asyncio
import multiprocessing
import os
import time

import pytest

from repro.core.online import AnswerResult
from repro.exec.backend import ProcessExecutor
from repro.exec.pool import ExecutorPool
from repro.exec.shm import PublishedBlob, SegmentUnavailable, attach_blob
from repro.exec.snapshot import SnapshotManager
from repro.serve import AsyncAnswerer, ServeConfig

TIMEOUT_S = 30.0


def _worker_pid(_task) -> int:
    return os.getpid()


def _assert_no_children() -> None:
    """Children unregister as they are reaped; poll briefly, then assert."""
    for _ in range(200):
        if not multiprocessing.active_children():
            break
        time.sleep(0.02)
    assert multiprocessing.active_children() == []


def _result(question: str, value: str) -> AnswerResult:
    return AnswerResult(
        question=question,
        value=value,
        values=(value,),
        score=1.0,
        entity="e",
        template="t",
        predicate=None,
        found_predicate=True,
    )


class FileGatedTarget:
    """A picklable scripted target whose workers signal through the FS.

    Each ``answer_many`` appends a line to ``started_path`` (visible to the
    test as "a worker is mid-batch on some snapshot") and then blocks until
    ``gate_path`` exists.  The answered value is whatever ``value`` was when
    the instance was *frozen* — exactly the staleness the epoch protocol
    must defeat.
    """

    def __init__(self, value: str, started_path: str, gate_path: str) -> None:
        self.value = value
        self.started_path = started_path
        self.gate_path = gate_path

    def answer_many(self, questions):
        """Report mid-batch, hold until released, answer with frozen value."""
        with open(self.started_path, "a", encoding="utf-8") as handle:
            handle.write(f"{self.value}\n")
        deadline = time.monotonic() + TIMEOUT_S
        while not os.path.exists(self.gate_path):
            if time.monotonic() > deadline:
                raise RuntimeError("gate never opened")
            time.sleep(0.005)
        return [_result(q, self.value) for q in questions]


class VersionedTarget:
    """Picklable target answering with its version counter at freeze time."""

    def __init__(self) -> None:
        self.version = 0

    def bump(self) -> int:
        """One live 'KB write': increment the served version."""
        self.version += 1
        return self.version

    def answer_many(self, questions):
        """Answer every question with the frozen version counter."""
        return [_result(q, str(self.version)) for q in questions]


async def _wait_for(path: str, lines: int = 1) -> None:
    deadline = time.monotonic() + TIMEOUT_S
    while True:
        if os.path.exists(path):
            with open(path, encoding="utf-8") as handle:
                if len(handle.readlines()) >= lines:
                    return
        if time.monotonic() > deadline:
            raise AssertionError(f"timed out waiting for {path} x{lines}")
        await asyncio.sleep(0.005)


class TestSnapshotFreshness:
    def test_mutation_during_inflight_batch_forces_refrozen_retry(self, tmp_path):
        """The satellite case: a worker delays mid-batch while the 'KB'
        mutates; the delivered answer must come from a *post-mutation*
        snapshot (the stale-epoch retry re-freezes), never the frozen v1."""
        started = str(tmp_path / "started")
        gate = str(tmp_path / "gate")
        target = FileGatedTarget("v1", started, gate)
        config = ServeConfig(executor="process", workers=1, max_batch=4)

        async def main():
            async with AsyncAnswerer(target, config) as answerer:
                pending = asyncio.ensure_future(answerer.answer("what is x?"))
                await _wait_for(started, lines=1)  # worker mid-batch on v1
                target.value = "v2"  # live mutation in the serving process
                answerer.invalidate()  # epoch bump -> v1 batch is stale
                (tmp_path / "gate").write_text("go\n")
                result = await pending
                return result, answerer.snapshot()

        result, stats = asyncio.run(main())
        assert result.value == "v2"
        assert stats["stale_retries"] >= 1
        assert stats["snapshot_refreezes"] >= 2  # epoch-0 freeze + refreeze
        # the retry really re-ran on a v2 snapshot, in a worker
        with open(started, encoding="utf-8") as handle:
            assert handle.read().splitlines()[-1] == "v2"

    def test_post_apply_requests_always_see_the_write(self):
        """Churn loop: after every apply() the next answer must carry the
        new version — the write-quiescence + refreeze path, repeated."""
        target = VersionedTarget()
        config = ServeConfig(executor="process", workers=2, max_batch=4)

        async def main():
            async with AsyncAnswerer(target, config) as answerer:
                for round_index in range(5):
                    version = await answerer.apply(target.bump)
                    result = await answerer.answer(f"round {round_index}?")
                    assert result.value == str(version), (
                        f"round {round_index} served stale version "
                        f"{result.value} != {version}"
                    )
                return answerer.snapshot()

        stats = asyncio.run(main())
        assert stats["applies"] == 5
        assert stats["snapshot_refreezes"] >= 6

    def test_concurrent_churn_never_time_travels(self):
        """Readers flooding the pool while a writer bumps versions: every
        delivered answer is a version that existed, and versions observed
        by successive post-apply probes never decrease."""
        target = VersionedTarget()
        config = ServeConfig(
            executor="process", workers=2, max_batch=4, max_pending=512
        )

        async def main():
            async with AsyncAnswerer(target, config) as answerer:
                observed: list[int] = []

                async def reader(index: int) -> None:
                    result = await answerer.answer(f"q{index}?")
                    assert 0 <= int(result.value) <= 3
                    observed.append(int(result.value))

                readers = [asyncio.ensure_future(reader(i)) for i in range(24)]
                floor = 0
                for _ in range(3):
                    version = await answerer.apply(target.bump)
                    probe = await answerer.answer(f"probe {version}?")
                    assert int(probe.value) == version >= floor
                    floor = version
                await asyncio.gather(*readers)
                return observed

        observed = asyncio.run(main())
        assert len(observed) == 24

    def test_unpicklable_target_fails_fast_at_start(self):
        """A target the process backend cannot freeze errors at start(),
        before any request is admitted (no worker tracebacks later)."""

        class Unpicklable:
            def __init__(self):
                self.gate = multiprocessing.get_context().Lock()

            def answer_many(self, questions):
                return [_result(q, "x") for q in questions]

        async def main():
            answerer = AsyncAnswerer(Unpicklable(), ServeConfig(executor="process"))
            with pytest.raises(Exception):
                await answerer.start()
            assert not answerer._running
            assert answerer._executor is None

        asyncio.run(main())
        assert multiprocessing.active_children() == []


class TestPersistentPool:
    """The warm-worker invariants: one pool start serves many calls, the
    same worker processes survive across calls, and published payloads
    republish only on invalidation."""

    def test_same_worker_pids_across_calls(self):
        with ExecutorPool("process", 2) as pool:
            # task→worker placement is scheduler-dependent (one fast worker
            # may drain a whole map), so the churn-free invariant is on the
            # *union*: across many calls, never more pids than pool workers
            pids: set[int] = set()
            for _ in range(3):
                pids.update(pool.executor().map(_worker_pid, range(8)))
            assert pids and len(pids) <= 2
            assert os.getpid() not in pids  # really out-of-process
            assert pool.starts == 1 and pool.leases == 3
        _assert_no_children()

    def test_repeated_expansions_reuse_pool_and_publish_once(self, suite):
        from repro.data.compile import compile_freebase_like
        from repro.kb.expansion import expand_predicates

        kb = compile_freebase_like(suite.world, shards=3)
        seeds = [e.node for e in suite.world.of_type("person")[:10]]
        reference = expand_predicates(kb.store, seeds, max_length=3)
        with ExecutorPool("process", 2) as pool:
            outputs = [
                expand_predicates(kb.store, seeds, max_length=3, executor=pool)
                for _ in range(3)
            ]
            for expanded in outputs:
                assert set(expanded.triples()) == set(reference.triples())
            # one pool start and one shard-table publish served all calls
            assert pool.starts == 1
            assert pool.publishes == 1
            pool.invalidate()  # a KB mutation would flow through here
            again = expand_predicates(kb.store, seeds, max_length=3, executor=pool)
            assert set(again.triples()) == set(reference.triples())
            assert pool.publishes == 2  # republished for the new generation
        _assert_no_children()

    def test_kbqa_owns_an_invalidating_pool(self, suite):
        """The system facade owns the pool and routes KB changes into its
        generation counter.  A private system: the mutation must not intern
        terms into the session fixtures' shared dictionary."""
        from repro.core.system import KBQA
        from repro.data.compile import compile_freebase_like

        kb = compile_freebase_like(suite.world)
        with KBQA.train(kb, suite.corpus, suite.conceptualizer) as system:
            pool = system.exec_pool
            assert isinstance(pool, ExecutorPool)
            before = pool.generation
            assert system.add_fact("pool-town", "population", '"1"')
            assert pool.generation > before
            assert system.delete_fact("pool-town", "population", '"1"')
            assert pool.generation > before + 1

    def test_publish_never_caches_pre_invalidation_bytes(self):
        """An invalidation landing while make_bytes serializes must force a
        re-serialization — the new generation can never be served bytes
        frozen from pre-mutation state."""
        with ExecutorPool("process", 1) as pool:
            serializations = []

            def make() -> bytes:
                serializations.append(len(serializations))
                if len(serializations) == 1:
                    pool.invalidate()  # the mutation races the serialization
                return f"state-{len(serializations)}".encode()

            name = pool.publish("k", make)
            assert len(serializations) == 2  # the stale first pass was discarded
            assert bytes(attach_blob(name).data) == b"state-2"

    def test_pool_usable_again_after_close(self):
        pool = ExecutorPool("process", 1)
        assert set(pool.executor().map(_worker_pid, [0])) != {os.getpid()}
        pool.close()
        _assert_no_children()
        # a closed pool restarts lazily instead of erroring
        assert set(pool.executor().map(_worker_pid, [0])) != {os.getpid()}
        pool.close()
        _assert_no_children()


class TestSharedMemoryHygiene:
    """Segment lifecycle: publishes attach from anywhere, unlink is
    authoritative, and close() leaks nothing."""

    def test_publish_attach_unlink_cycle(self):
        from repro.exec.shm import AttachedBlob

        blob = PublishedBlob(b"payload-bytes", tag=7)
        attached = attach_blob(blob.name, expected_tag=7)
        assert bytes(attached.data) == b"payload-bytes"
        with pytest.raises(SegmentUnavailable, match="tag"):
            attach_blob(blob.name, expected_tag=8)
        blob.unlink()
        # a fresh (uncached) attach observes the unlink
        with pytest.raises(SegmentUnavailable):
            AttachedBlob(blob.name)

    def test_pool_close_unlinks_published_segments(self):
        with ExecutorPool("process", 1) as pool:
            name = pool.publish("k", lambda: b"table-bytes")
            assert bytes(attach_blob(name).data) == b"table-bytes"
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)

    def test_snapshot_manager_close_unlinks_segments(self):
        target = VersionedTarget()
        manager = SnapshotManager(target, use_shm=True)
        manager.freeze(0)
        first = manager.segment_name()
        assert first is not None
        target.bump()
        manager.freeze(1)
        second = manager.segment_name()
        assert second != first
        manager.close()
        from multiprocessing import shared_memory

        for name in (first, second):
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_answerer_stop_unlinks_snapshot_segment_and_children(self):
        """Acceptance: after stop() no shared-memory segment and no worker
        process survives."""
        target = VersionedTarget()
        config = ServeConfig(executor="process", workers=2)

        async def main():
            answerer = AsyncAnswerer(target, config)
            await answerer.start()
            await answerer.answer_many([f"q{i}" for i in range(6)])
            name = answerer._snapshots.segment_name()
            assert name is not None
            stats = answerer.snapshot()
            assert stats["snapshot_publishes"] >= 1
            await answerer.stop()
            return name

        name = asyncio.run(main())
        from multiprocessing import shared_memory

        with pytest.raises(FileNotFoundError):
            shared_memory.SharedMemory(name=name)
        _assert_no_children()


class TestCleanShutdown:
    def test_stop_leaves_no_worker_processes(self):
        target = VersionedTarget()
        config = ServeConfig(executor="process", workers=2)

        async def main():
            async with AsyncAnswerer(target, config) as answerer:
                await answerer.answer_many([f"q{i}" for i in range(8)])
            assert answerer._executor is None

        asyncio.run(main())
        for _ in range(100):  # children unregister as they are reaped
            if not multiprocessing.active_children():
                break
            time.sleep(0.02)
        assert multiprocessing.active_children() == []

    def test_repeated_cycles_do_not_accumulate_workers(self):
        target = VersionedTarget()

        async def one_cycle(index: int):
            async with AsyncAnswerer(
                target, ServeConfig(executor="process", workers=2)
            ) as answerer:
                result = await answerer.answer(f"cycle {index}?")
                assert result.value == "0"

        for index in range(3):
            asyncio.run(one_cycle(index))
        assert multiprocessing.active_children() == []

    def test_executor_close_joins_children(self):
        with ProcessExecutor(2) as executor:
            assert executor.map(_identity, [1, 2, 3, 4]) == [1, 2, 3, 4]
        assert multiprocessing.active_children() == []

    def test_stop_fails_queued_requests_deterministically(self, tmp_path):
        """Queued-but-undispatched requests fail with 'serving stopped'
        (not a hang) even when a process worker holds the only slot."""
        started = str(tmp_path / "started")
        gate = str(tmp_path / "gate")
        target = FileGatedTarget("v", started, gate)
        config = ServeConfig(executor="process", workers=1, max_batch=1)

        async def main():
            answerer = AsyncAnswerer(target, config)
            await answerer.start()
            inflight = asyncio.ensure_future(answerer.answer("first?"))
            await _wait_for(started)  # slot taken, worker blocked on gate
            queued = asyncio.ensure_future(answerer.answer("second, queued?"))
            await asyncio.sleep(0.02)  # let the queued entry land
            # begin shutdown while the worker still holds the gate: the
            # queued request must fail *before* the slot could free up
            stop_task = asyncio.ensure_future(answerer.stop())
            with pytest.raises(RuntimeError, match="serving stopped"):
                await queued
            (tmp_path / "gate").write_text("go\n")
            await stop_task
            first = await inflight  # in-flight batch completed on stop
            assert first.value == "v"
            return True

        assert asyncio.run(main())
        assert multiprocessing.active_children() == []


def _identity(x):
    return x
