"""Tests for benchmark construction and the sentence corpus."""


from repro.corpus.benchmark import (
    build_complex_benchmark,
    build_qald_like,
    build_webquestions_like,
)
from repro.corpus.sentences import SENTENCE_TEMPLATES, generate_sentences
from repro.corpus.surface import SURFACES


class TestQALDLikeBenchmarks:
    def test_ratio_matches_table5(self, suite):
        """Table 5: QALD-5 12/50, QALD-3 41/99, QALD-1 27/50."""
        expectations = {"qald5": (50, 12), "qald3": (99, 41), "qald1": (50, 27)}
        for name, (total, bfq) in expectations.items():
            bench = suite.benchmark(name)
            assert bench.n_total == total, name
            assert bench.n_bfq == bfq, name

    def test_deterministic(self, world):
        a = build_qald_like("t", world, seed=9, n_bfq_seen=5, n_nonbfq=5)
        b = build_qald_like("t", world, seed=9, n_bfq_seen=5, n_nonbfq=5)
        assert [q.question for q in a.questions] == [q.question for q in b.questions]

    def test_qids_unique(self, suite):
        for bench in suite.benchmarks.values():
            qids = [q.qid for q in bench.questions]
            assert len(qids) == len(set(qids))

    def test_bfq_gold_values_from_world(self, suite, world):
        for bq in suite.benchmark("qald3").bfqs():
            if bq.gold_intent is None:
                continue
            assert bq.gold_values == frozenset(world.gold_values(bq.entity, bq.gold_intent))

    def test_categories_present(self, suite):
        categories = {q.category for q in suite.benchmark("qald3").questions}
        assert "bfq_seen" in categories
        assert "bfq_unseen" in categories
        assert "bfq_ambiguous" in categories
        assert any(c.startswith("nonbfq") for c in categories)

    def test_unseen_questions_use_heldout_surfaces(self, suite):
        train_texts = {
            s.text for surfaces in SURFACES.values() for s in surfaces if not s.test_only
        }
        for bq in suite.benchmark("qald3").questions:
            if bq.category != "bfq_unseen":
                continue
            # Rebuild the surface by replacing the entity name with {e}.
            name = suite.world.name_of(bq.entity)
            surface = bq.question.replace(name, "{e}")
            assert surface not in train_texts

    def test_nonbfq_have_no_gold_intent(self, suite):
        for bq in suite.benchmark("qald3").questions:
            if not bq.is_bfq and bq.category != "complex":
                assert bq.gold_intent is None

    def test_superlative_gold_correct(self, suite, world):
        for bq in suite.benchmark("webquestions").questions:
            if bq.category != "nonbfq_superlative":
                continue
            if "city has the largest population" in bq.question:
                best = max(
                    (c for c in world.of_type("city") if c.get_fact("population")),
                    key=lambda c: int(c.get_fact("population")[0]),
                )
                assert bq.gold_values == frozenset({best.name})


class TestWebQuestionsLike:
    def test_size_and_ratio(self, suite):
        bench = suite.benchmark("webquestions")
        assert bench.n_total == 200
        assert 0.25 < bench.bfq_ratio < 0.45

    def test_scalable(self, world):
        bench = build_webquestions_like(world, seed=3, total=60)
        assert bench.n_total == 60


class TestComplexBenchmark:
    def test_eight_questions(self, suite):
        assert suite.benchmark("complex").n_total == 8

    def test_patterns_cover_table15_shapes(self, suite):
        patterns = {q.meta["pattern"] for q in suite.benchmark("complex").questions}
        assert any("capital" in p for p in patterns)
        assert any("spouse" in p for p in patterns)
        assert any("ceo" in p for p in patterns)

    def test_gold_values_nonempty(self, suite):
        for q in suite.benchmark("complex").questions:
            assert q.gold_values

    def test_deterministic(self, world):
        a = build_complex_benchmark(world, seed=7)
        b = build_complex_benchmark(world, seed=7)
        assert [q.question for q in a.questions] == [q.question for q in b.questions]


class TestSentences:
    def test_generated_count(self, suite):
        assert len(suite.sentences) == 4000

    def test_sentences_mention_entity_and_value(self, suite, world):
        for sentence in suite.sentences[:50]:
            # every sentence comes from a template with both slots filled
            assert len(sentence.split()) >= 4

    def test_templates_have_slots(self):
        for intent, templates in SENTENCE_TEMPLATES.items():
            for t in templates:
                assert "{e}" in t and "{v}" in t, (intent, t)

    def test_deterministic(self, world):
        assert generate_sentences(world, 100, seed=3) == generate_sentences(world, 100, seed=3)

    def test_only_covered_intents_render(self):
        from repro.data.world import SCHEMA_BY_INTENT

        # bootstrapping's coverage gap: CVT intents have no sentence templates
        assert "members" not in SENTENCE_TEMPLATES
        assert "songs" not in SENTENCE_TEMPLATES
        for intent in SENTENCE_TEMPLATES:
            assert intent in SCHEMA_BY_INTENT
