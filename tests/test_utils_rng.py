"""Tests for deterministic RNG streams."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.rng import SeedStream, stable_hash


class TestStableHash:
    def test_deterministic_across_calls(self):
        assert stable_hash("a", 1) == stable_hash("a", 1)

    def test_different_inputs_differ(self):
        assert stable_hash("a") != stable_hash("b")

    def test_order_matters(self):
        assert stable_hash("a", "b") != stable_hash("b", "a")

    def test_part_boundaries_are_not_ambiguous(self):
        # ("ab",) must not collide with ("a", "b").
        assert stable_hash("ab") != stable_hash("a", "b")

    def test_fits_in_64_bits(self):
        assert 0 <= stable_hash("anything") < 2**64

    @given(st.lists(st.text(), max_size=4))
    def test_always_reproducible(self, parts):
        assert stable_hash(*parts) == stable_hash(*parts)


class TestSeedStream:
    def test_same_path_same_randomness(self):
        a = SeedStream(42).substream("x").rng().random()
        b = SeedStream(42).substream("x").rng().random()
        assert a == b

    def test_different_names_are_independent(self):
        a = SeedStream(42).substream("x").rng().random()
        b = SeedStream(42).substream("y").rng().random()
        assert a != b

    def test_different_seeds_differ(self):
        a = SeedStream(1).substream("x").rng().random()
        b = SeedStream(2).substream("x").rng().random()
        assert a != b

    def test_nested_substreams(self):
        stream = SeedStream(7).substream("a").substream("b")
        assert stream.path == ("a", "b")

    def test_choice_is_deterministic(self):
        stream = SeedStream(7).substream("pick")
        assert stream.choice([1, 2, 3]) == stream.choice([1, 2, 3])

    def test_choice_varies_with_salt(self):
        stream = SeedStream(7).substream("pick")
        values = {stream.choice(list(range(100)), salt=i) for i in range(30)}
        assert len(values) > 5

    def test_choice_empty_raises(self):
        with pytest.raises(ValueError):
            SeedStream(7).choice([])

    def test_shuffled_preserves_elements(self):
        stream = SeedStream(7).substream("shuffle")
        original = list(range(20))
        shuffled = stream.shuffled(original)
        assert sorted(shuffled) == original
        assert shuffled != original  # overwhelmingly likely for 20 elements

    def test_shuffled_does_not_mutate(self):
        original = [3, 1, 2]
        SeedStream(7).shuffled(original)
        assert original == [3, 1, 2]

    def test_ints_stream(self):
        stream = SeedStream(7).substream("ints")
        values = []
        for value in stream.ints(0, 10):
            values.append(value)
            if len(values) == 50:
                break
        assert all(0 <= v <= 10 for v in values)
        assert len(set(values)) > 3
