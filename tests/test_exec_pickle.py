"""Pickle-safety of every frozen payload the process backends ship.

A field that stops pickling — a lock slipped into a store, a closure on an
answerer — would otherwise surface as an opaque traceback inside a worker
process.  These tests round-trip every payload type through
``pickle.dumps``/``loads`` in tier-1 and assert *behavioral* equality, so
the failure happens here, named, instead of in a pool.

Payload inventory (everything `repro.exec` serializes):

* KB backends (:class:`TripleStore`, :class:`ShardedTripleStore`) — thawed
  copies answer identically and are shared-nothing (no listeners cross);
* :class:`ExpandedStore` and :class:`KBView` — frozen-view lookups survive;
* :class:`OnlineAnswerer` — the serving snapshot core (locks and LRUs are
  rebuilt on thaw; the warm answer cache ships);
* the task/result structs (:class:`ShardScanTask`,
  :class:`ShardScanResult`, :class:`AnswerBatchTask`) and
  :class:`AnswerResult` rows.
"""

from __future__ import annotations

import pickle

import pytest

from repro.core.kbview import KBView
from repro.core.online import OnlineAnswerer
from repro.exec.snapshot import AnswerBatchTask, evaluate_frozen_batch, freeze_target
from repro.exec.tasks import ShardScanTask, scan_shard, split_frontier_by_shard
from repro.kb.expansion import expand_predicates
from repro.kb.paths import PredicatePath
from repro.kb.sharded import ShardedTripleStore
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


def roundtrip(obj):
    """One dumps/loads cycle at the protocol the executors use."""
    return pickle.loads(pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL))


def _toy_kb(shards: int = 1):
    kb = ShardedTripleStore(shards=shards) if shards > 1 else TripleStore()
    kb.add("a", "name", make_literal("alice"))
    kb.add("a", "marriage", "cvt1")
    kb.add("cvt1", "person", "b")
    kb.add("b", "name", make_literal("bob"))
    kb.add("c", "dob", make_literal("1970"))
    return kb


class TestBackendPickle:
    @pytest.mark.parametrize("shards", [1, 3])
    def test_store_roundtrip_behaviorally_equal(self, shards):
        kb = _toy_kb(shards)
        thawed = roundtrip(kb)
        assert len(thawed) == len(kb)
        assert thawed.objects("a", "marriage") == kb.objects("a", "marriage")
        assert thawed.predicates() == kb.predicates()
        assert sorted(thawed.triples_ids()) == sorted(kb.triples_ids())

    def test_listeners_do_not_cross_the_boundary(self):
        kb = _toy_kb()
        events = []
        kb.subscribe(events.append)
        thawed = roundtrip(kb)
        assert thawed._listeners == []
        thawed.add("z", "name", make_literal("zed"))
        assert events == []  # shared-nothing: the copy never notifies us
        kb.add("y", "name", make_literal("why"))
        assert len(events) == 1

    def test_thawed_copy_is_independent(self):
        kb = _toy_kb()
        thawed = roundtrip(kb)
        thawed.add("only-in-copy", "name", make_literal("copy"))
        assert not kb.has_subject("only-in-copy")

    def test_shard_tables_pickle(self):
        kb = _toy_kb(shards=3)
        tables = tuple(kb.shard_table(i) for i in range(kb.n_shards))
        thawed = roundtrip(tables)
        assert [sorted(t) for t in thawed] == [sorted(t) for t in tables]


class TestExpansionPayloadPickle:
    def test_expanded_store_roundtrip(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a", "c"], max_length=3, record_reach=True)
        thawed = roundtrip(expanded)
        spouse = PredicatePath(("marriage", "person", "name"))
        assert thawed.objects("a", spouse) == expanded.objects("a", spouse)
        assert thawed.paths_between("a", make_literal("bob")) == expanded.paths_between(
            "a", make_literal("bob")
        )
        assert len(thawed) == len(expanded)
        assert dict(thawed.reach_items()) == dict(expanded.reach_items())

    def test_kbview_roundtrip(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a"], max_length=3)
        view = KBView(kb, expanded)
        thawed = roundtrip(view)
        spouse = PredicatePath(("marriage", "person", "name"))
        assert thawed.values("a", spouse) == view.values("a", spouse)
        assert thawed.paths_between("a", make_literal("bob")) == view.paths_between(
            "a", make_literal("bob")
        )

    def test_scan_task_roundtrip_same_scan_output(self):
        """A thawed ShardScanTask scans to the identical buffers."""
        kb = _toy_kb(shards=2)
        dictionary = kb.dictionary
        a = dictionary.lookup("a")
        frontier = {a: {(a, ())}}
        tail_ids = frozenset(
            i for t in ("name", "alias") if (i := dictionary.lookup(t)) is not None
        )
        for shard, frontier_slice in enumerate(split_frontier_by_shard(frontier, 2)):
            task = ShardScanTask(
                shard=shard,
                frontier=frontier_slice,
                tail_ids=tail_ids,
                is_last_round=False,
                table=kb.shard_table(shard),
            )
            direct = scan_shard(task)
            thawed_result = scan_shard(roundtrip(task))
            assert thawed_result.records == direct.records
            assert thawed_result.additions == direct.additions
            assert roundtrip(direct) == direct


class TestServingSnapshotPickle:
    def test_online_answerer_roundtrip(self, kbqa_fb, suite):
        """The frozen serving core answers byte-for-byte identically."""
        questions = [q.question for q in suite.benchmark("qald3").bfqs()][:6]
        answerer: OnlineAnswerer = kbqa_fb.answerer
        expected = answerer.answer_many(questions)
        thawed = roundtrip(answerer)
        assert thawed.answer_many(questions) == expected
        # warm answer cache ships with the snapshot
        assert thawed.cache_info()["answer_cache_entries"] >= 1

    def test_freeze_target_unwraps_kbqa(self, kbqa_fb, suite):
        question = [q.question for q in suite.benchmark("qald3").bfqs()][0]
        thawed = pickle.loads(freeze_target(kbqa_fb))
        assert isinstance(thawed, OnlineAnswerer)
        assert thawed.answer(question) == kbqa_fb.answer(question)

    def test_kbqa_itself_refuses_to_pickle(self, kbqa_fb):
        with pytest.raises(TypeError, match="freeze_target"):
            pickle.dumps(kbqa_fb)

    def test_answer_batch_task_roundtrip(self, kbqa_fb, suite):
        questions = tuple(q.question for q in suite.benchmark("qald3").bfqs())[:4]
        task = AnswerBatchTask(
            epoch=3, blob=freeze_target(kbqa_fb), questions=questions
        )
        thawed_task = roundtrip(task)
        assert thawed_task == task
        results = evaluate_frozen_batch(thawed_task)
        assert results == [kbqa_fb.answer(q) for q in questions]

    def test_answer_result_roundtrip(self, kbqa_fb, suite):
        for q in [q.question for q in suite.benchmark("qald3").bfqs()][:4]:
            result = kbqa_fb.answer(q)
            assert roundtrip(result) == result
