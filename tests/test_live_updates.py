"""Live KB add/delete flowing through every layer.

The chain under test: backend mutation -> KBChange notification ->
per-seed ExpandedStore invalidation + targeted single-seed re-expansion
(`repro.kb.live`) -> answer-cache invalidation -> a *different answer*,
with no retraining and no full re-expansion.
"""

import pytest

import repro.kb.live as live_module
from repro.core.system import KBQA
from repro.data.compile import compile_freebase_like
from repro.kb.expansion import expand_predicates
from repro.kb.live import LiveExpansionMaintainer
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal

SPOUSE_PATH = PredicatePath(("marriage", "person", "name"))


def _toy_kb():
    kb = TripleStore()
    kb.add("a", "name", make_literal("alice"))
    kb.add("a", "marriage", "cvt1")
    kb.add("cvt1", "person", "b")
    kb.add("b", "name", make_literal("bob"))
    kb.add("c", "name", make_literal("carol"))
    kb.add("c", "dob", make_literal("1970"))
    return kb


class TestMaintainer:
    def test_add_through_intermediate_node_updates_expansion(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a", "c"], max_length=3)
        LiveExpansionMaintainer(kb, expanded, ["a", "c"])
        assert expanded.objects("a", SPOUSE_PATH) == {make_literal("bob")}
        kb.add("b", "alias", make_literal("bobby"))
        alias_path = PredicatePath(("marriage", "person", "alias"))
        assert expanded.objects("a", alias_path) == {make_literal("bobby")}

    def test_delete_removes_expanded_triples(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a", "c"], max_length=3)
        LiveExpansionMaintainer(kb, expanded, ["a", "c"])
        kb.delete("cvt1", "person", "b")
        assert expanded.objects("a", SPOUSE_PATH) == frozenset()
        assert expanded.paths_between("a", make_literal("bob")) == frozenset()
        # unrelated seed untouched
        assert expanded.objects("c", PredicatePath.single("dob")) == {
            make_literal("1970")
        }

    def test_only_affected_seeds_refresh(self, monkeypatch):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a", "c"], max_length=3)
        maintainer = LiveExpansionMaintainer(kb, expanded, ["a", "c"])
        calls = []
        real_expand = live_module.expand_predicates

        def _counting(store, seeds, **kwargs):
            seeds = list(seeds)
            calls.append(seeds)
            return real_expand(store, seeds, **kwargs)

        monkeypatch.setattr(live_module, "expand_predicates", _counting)
        kb.add("b", "alias", make_literal("bobby"))
        # edge under 'b' is reached only from seed 'a': exactly one
        # single-seed refresh, never a full re-expansion
        assert calls == [["a"]]
        assert maintainer.seeds_refreshed == 1
        calls.clear()
        kb.add("unrelated", "name", make_literal("nobody"))
        assert calls == []
        assert maintainer.events_seen == 2

    def test_seed_gaining_its_first_triples(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a", "ghost"], max_length=3)
        LiveExpansionMaintainer(kb, expanded, ["a", "ghost"])
        assert expanded.paths_of("ghost") == frozenset()
        kb.add("ghost", "name", make_literal("the ghost"))
        assert expanded.objects("ghost", PredicatePath.single("name")) == {
            make_literal("the ghost")
        }

    def test_loaded_artifact_with_own_dictionary(self, tmp_path):
        """A reloaded expansion (own dictionary) still tracks live edits —
        the maintainer's string-level merge branch."""
        from repro.kb.expansion import ExpandedStore

        kb = _toy_kb()
        built = expand_predicates(kb, ["a", "c"], max_length=3, record_reach=True)
        path = tmp_path / "expansion.kbqa"
        built.save(path)
        loaded = ExpandedStore.load(path)
        assert loaded.dictionary is not kb.dictionary
        LiveExpansionMaintainer(kb, loaded, ["a", "c"])
        kb.add("b", "alias", make_literal("bobby"))
        alias_path = PredicatePath(("marriage", "person", "alias"))
        assert loaded.objects("a", alias_path) == {make_literal("bobby")}
        kb.delete("cvt1", "person", "b")
        assert loaded.objects("a", SPOUSE_PATH) == frozenset()

    def test_close_detaches(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a"], max_length=3)
        maintainer = LiveExpansionMaintainer(kb, expanded, ["a"])
        maintainer.close()
        kb.add("b", "alias", make_literal("bobby"))
        assert maintainer.events_seen == 0


class TestInvalidateSeed:
    def test_invalidate_then_reexpand_matches_fresh(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a", "c"], max_length=3)
        before = {(s, str(p), o) for s, p, o in expanded.triples()}
        assert expanded.invalidate_seed("a")
        assert expanded.paths_of("a") == frozenset()
        expand_predicates(kb, ["a"], max_length=3, into=expanded)
        assert {(s, str(p), o) for s, p, o in expanded.triples()} == before

    def test_invalidate_unknown_seed_is_a_noop(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a"], max_length=3)
        n = len(expanded)
        assert not expanded.invalidate_seed("never-seen")
        assert len(expanded) == n

    def test_into_requires_shared_dictionary(self):
        kb = _toy_kb()
        foreign = expand_predicates(_toy_kb(), ["a"], max_length=3)
        with pytest.raises(ValueError, match="dictionary"):
            expand_predicates(kb, ["a"], max_length=3, into=foreign)


@pytest.fixture(scope="module")
def live_system(suite):
    """A fresh trained system over a private KB copy (safe to mutate)."""
    kb = compile_freebase_like(suite.world)
    return KBQA.train(kb, suite.corpus, suite.conceptualizer)


class TestSystemLevelLiveEdits:
    def _spouse_case(self, suite, system):
        for entity in suite.world.of_type("person"):
            spouses = system.kb.store.objects(entity.node, "marriage")
            if spouses:
                cvt = next(iter(spouses))
                partner = next(iter(system.kb.store.objects(cvt, "person")))
                question = f"who is the spouse of {entity.name}?"
                if system.answer(question).answered:
                    return question, cvt, partner
        raise AssertionError("no answerable spouse question in the suite")

    def test_answer_changes_after_delete_without_reexpansion(
        self, suite, live_system, monkeypatch
    ):
        question, cvt, partner = self._spouse_case(suite, live_system)
        before = live_system.answer(question)
        assert before.answered

        calls = []
        real_expand = live_module.expand_predicates

        def _counting(store, seeds, **kwargs):
            seeds = list(seeds)
            calls.append(seeds)
            return real_expand(store, seeds, **kwargs)

        monkeypatch.setattr(live_module, "expand_predicates", _counting)

        assert live_system.delete_fact(cvt, "person", partner)
        after = live_system.answer(question)
        assert after != before
        assert before.value not in after.values
        # every refresh was a targeted single-seed expansion
        assert calls and all(len(seeds) == 1 for seeds in calls)

        # restore: the answer comes back, again via per-seed refresh only
        assert live_system.add_fact(cvt, "person", partner)
        restored = live_system.answer(question)
        assert restored.answered
        assert restored.value == before.value

    def test_added_fact_is_served(self, live_system):
        entity = "m.live_new_entity"
        assert live_system.add_fact(entity, "name", make_literal("zanzibar mcgee"))
        assert live_system.kb.store.has_subject(entity)
        # direct KB lookups see it immediately through the same view
        assert live_system.learn_result.kbview.values(
            entity, PredicatePath.single("name")
        ) == {make_literal("zanzibar mcgee")}
        assert live_system.delete_fact(entity, "name", make_literal("zanzibar mcgee"))

    def test_duplicate_add_is_inert(self, live_system):
        stats_before = live_system.kb.store.stats()
        refreshed_before = live_system.maintainer.seeds_refreshed
        triple = next(iter(live_system.kb.store.triples()))
        assert not live_system.add_fact(triple.subject, triple.predicate, triple.object)
        assert live_system.kb.store.stats() == stats_before
        assert live_system.maintainer.seeds_refreshed == refreshed_before


class TestBatchContext:
    """`with backend.batch():` — deferred notifications, coalesced refresh."""

    def test_bulk_load_triggers_one_rebuild_per_affected_seed(self, monkeypatch):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a", "c"], max_length=3)
        maintainer = LiveExpansionMaintainer(kb, expanded, ["a", "c"])
        calls = []
        real_expand = live_module.expand_predicates

        def _counting(store, seeds, **kwargs):
            seeds = list(seeds)
            calls.append(seeds)
            return real_expand(store, seeds, **kwargs)

        monkeypatch.setattr(live_module, "expand_predicates", _counting)
        with kb.batch():
            # three edits, every one reaching only seed 'a'
            kb.add("b", "alias", make_literal("bobby"))
            kb.add("b", "nick", make_literal("bo"))
            kb.add("cvt1", "since", make_literal("1999"))
            assert calls == []  # nothing refreshed inside the block
        # one coalesced flush: exactly one single-seed rebuild for 'a'
        assert calls == [["a"]]
        assert maintainer.seeds_refreshed == 1
        assert maintainer.events_seen == 3
        alias_path = PredicatePath(("marriage", "person", "alias"))
        assert expanded.objects("a", alias_path) == {make_literal("bobby")}

    def test_batched_burst_matches_sequential_expansion(self):
        """The coalesced refresh must land on exactly the state a
        change-by-change replay produces."""
        edits = [
            ("add", "b", "alias", make_literal("bobby")),
            ("delete", "cvt1", "person", "b"),
            ("add", "cvt1", "person", "c"),
            ("add", "c", "title", make_literal("dr")),
        ]

        def apply_edits(kb, batched: bool):
            expanded = expand_predicates(kb, ["a", "c"], max_length=3)
            LiveExpansionMaintainer(kb, expanded, ["a", "c"])
            if batched:
                with kb.batch():
                    for action, s, p, o in edits:
                        (kb.add if action == "add" else kb.delete)(s, p, o)
            else:
                for action, s, p, o in edits:
                    (kb.add if action == "add" else kb.delete)(s, p, o)
            return {(s, str(p), o) for s, p, o in expanded.triples()}

        assert apply_edits(_toy_kb(), batched=True) == apply_edits(
            _toy_kb(), batched=False
        )

    def test_nested_batches_flush_once_at_outermost_exit(self):
        kb = _toy_kb()
        expanded = expand_predicates(kb, ["a"], max_length=3)
        maintainer = LiveExpansionMaintainer(kb, expanded, ["a"])
        with kb.batch():
            kb.add("b", "alias", make_literal("bobby"))
            with kb.batch():
                kb.add("b", "nick", make_literal("bo"))
            assert maintainer.events_seen == 0  # inner exit does not flush
        assert maintainer.events_seen == 2
        assert maintainer.seeds_refreshed == 1

    def test_reads_inside_the_block_see_applied_changes(self):
        kb = _toy_kb()
        with kb.batch():
            kb.add("z", "name", make_literal("zed"))
            assert kb.has("z", "name", make_literal("zed"))
            assert kb.delete("z", "name", make_literal("zed"))

    def test_plain_listeners_get_a_per_change_replay(self):
        kb = _toy_kb()
        seen = []
        kb.subscribe(seen.append)  # no batch_listener registered
        with kb.batch():
            kb.add("b", "alias", make_literal("bobby"))
            kb.add("b", "nick", make_literal("bo"))
            assert seen == []
        assert [c.action for c in seen] == ["add", "add"]

    def test_system_batch_drops_answer_cache_once(self, suite, live_system, monkeypatch):
        """KBQA.batch(): a burst of facts costs one cache invalidation."""
        clears = []
        real_clear = live_system.answerer.clear_caches
        monkeypatch.setattr(
            live_system.answerer, "clear_caches",
            lambda: (clears.append(1), real_clear())[1],
        )
        facts = [
            ("m.batch_new_1", "name", make_literal("batch one")),
            ("m.batch_new_2", "name", make_literal("batch two")),
        ]
        with live_system.batch():
            for fact in facts:
                assert live_system.add_fact(*fact)
        assert len(clears) == 1
        for subject, _p, _o in facts:
            assert live_system.kb.store.has_subject(subject)
        with live_system.batch():
            for fact in facts:
                assert live_system.delete_fact(*fact)
        assert len(clears) == 2
