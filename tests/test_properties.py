"""Cross-module property-based tests.

These exercise invariants that span several components: the decomposition
DP against brute force, the BGP solver against a naive reference, the
expansion against live traversal on random graphs, and a statistical
end-to-end accuracy sweep of the trained system.
"""

from __future__ import annotations

import itertools

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.kb.expansion import expand_predicates
from repro.kb.paths import follow
from repro.kb.query import is_variable, solve
from repro.kb.store import TripleStore
from repro.utils.rng import SeedStream


# ---------------------------------------------------------------------------
# BGP solver vs. naive reference
# ---------------------------------------------------------------------------

_nodes = st.sampled_from(["n1", "n2", "n3", "n4"])
_preds = st.sampled_from(["p", "q"])
_terms_or_vars = st.sampled_from(["n1", "n2", "n3", "?x", "?y"])
_pred_or_var = st.sampled_from(["p", "q", "?r"])


def _naive_solve(store: TripleStore, patterns) -> set[frozenset]:
    """Reference: enumerate every assignment of variables to store terms."""
    variables = sorted({
        t for pattern in patterns for t in pattern if is_variable(t)
    })
    universe = sorted({
        term for triple in store.triples()
        for term in (triple.subject, triple.predicate, triple.object)
    })
    solutions = set()
    for assignment in itertools.product(universe, repeat=len(variables)):
        binding = dict(zip(variables, assignment))
        if all(
            store.has(*(binding.get(t, t) for t in pattern))
            for pattern in patterns
        ):
            solutions.add(frozenset(binding.items()))
    return solutions


class TestQueryAgainstReference:
    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(_nodes, _preds, _nodes), min_size=1, max_size=8),
        st.lists(
            st.tuples(_terms_or_vars, _pred_or_var, _terms_or_vars),
            min_size=1,
            max_size=2,
        ),
    )
    def test_solver_matches_naive_enumeration(self, triples, patterns):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
        fast = {frozenset(b.items()) for b in solve(store, patterns)}
        assert fast == _naive_solve(store, patterns)


# ---------------------------------------------------------------------------
# Expansion vs. live traversal on random graphs
# ---------------------------------------------------------------------------


class TestExpansionAgainstTraversal:
    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(_nodes, st.sampled_from(["p", "name"]), _nodes), max_size=20))
    def test_materialized_equals_followed(self, triples):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
        seeds = ["n1", "n2"]
        expanded = expand_predicates(store, seeds, max_length=3)
        for subject, path, obj in expanded.triples():
            assert obj in follow(store, subject, path)
            assert subject in seeds

    @settings(max_examples=25, deadline=None)
    @given(st.lists(st.tuples(_nodes, st.sampled_from(["p", "name"]), _nodes), max_size=20))
    def test_tail_whitelist_invariant(self, triples):
        store = TripleStore()
        for s, p, o in triples:
            store.add(s, p, o)
        expanded = expand_predicates(store, ["n1"], max_length=3)
        for path in expanded.distinct_paths():
            assert path.is_direct or path.last in ("name", "alias")


# ---------------------------------------------------------------------------
# Decomposition DP vs. brute force
# ---------------------------------------------------------------------------


def _brute_force_best(decomposer, tokens) -> float:
    """Score of the best decomposition by exhaustive recursion (Eq 28)."""
    tokens = tuple(tokens)

    def best(span: tuple[str, ...]) -> float:
        score = 1.0 if decomposer.is_primitive(span) else 0.0
        n = len(span)
        for i in range(n):
            for j in range(i + 1, n + 1):
                if (i, j) == (0, n):
                    continue
                inner = best(span[i:j])
                if inner <= 0.0:
                    continue
                remainder = list(span[:i]) + ["$e"] + list(span[j:])
                score = max(score, decomposer.statistics.validity(remainder) * inner)
        return score

    return best(tokens)


class TestDecompositionOptimality:
    def test_dp_matches_brute_force_on_complex_questions(self, suite, kbqa_fb):
        from repro.nlp.tokenizer import tokenize

        questions = [q.question for q in suite.benchmark("complex").questions][:4]
        for question in questions:
            tokens = tokenize(question)
            if len(tokens) > 12:  # keep brute force tractable
                continue
            dp_score = kbqa_fb.decompose(question).score
            brute = _brute_force_best(kbqa_fb.decomposer, tokens)
            assert dp_score == pytest.approx(brute), question

    def test_dp_matches_brute_force_on_simple_bfqs(self, suite, kbqa_fb):
        from repro.nlp.tokenizer import tokenize

        city = next(e for e in suite.world.of_type("city") if e.get_fact("population"))
        question = f"how big is {city.name}?"
        dp_score = kbqa_fb.decompose(question).score
        brute = _brute_force_best(kbqa_fb.decomposer, tokenize(question))
        assert dp_score == pytest.approx(brute)


# ---------------------------------------------------------------------------
# Statistical end-to-end sweep
# ---------------------------------------------------------------------------


class TestEndToEndSweep:
    def test_seen_surface_accuracy_over_random_probes(self, suite, kbqa_fb):
        """Over many random (entity, intent, seen-surface) probes, KBQA must
        be overwhelmingly right-or-silent and never confidently wrong about
        a different entity's fact."""
        from repro.corpus.surface import train_surfaces

        rng = SeedStream(13).substream("sweep").rng()
        instances = [
            (intent, node)
            for node, entity in suite.world.entities.items()
            for intent in entity.facts
        ]
        right = wrong = refused = 0
        for _ in range(200):
            intent, node = rng.choice(instances)
            bank = train_surfaces(intent)
            surface = rng.choice(bank)
            question = surface.text.format(e=suite.world.name_of(node))
            result = kbqa_fb.answer(question)
            if not result.answered:
                refused += 1
                continue
            gold = {v.lower() for v in suite.world.gold_values(node, intent)}
            related_gold = set()
            from repro.data.world import SCHEMA_BY_INTENT

            for rel in SCHEMA_BY_INTENT[intent].related:
                related_gold |= {
                    v.lower() for v in suite.world.gold_values(node, rel)
                }
            predicted = {v.lower() for v in result.values}
            if predicted & (gold | related_gold):
                right += 1
            else:
                wrong += 1
        answered = right + wrong
        assert answered > 100, "most probes must be answered"
        assert right / answered > 0.9, (right, wrong, refused)
