"""Tests for metrics and evaluation runners."""

import pytest

from repro.eval.metrics import Judgement, QALDMetrics, WebQMetrics, judge
from repro.eval.runner import evaluate_qald, evaluate_webquestions


class TestJudge:
    def test_exact_value_match_right(self):
        assert judge({"1961"}, {"1961"}) == Judgement.RIGHT

    def test_case_insensitive(self):
        assert judge({"Tokyo"}, {"tokyo"}) == Judgement.RIGHT

    def test_overlap_partial(self):
        assert judge({"a", "b"}, {"b", "c"}) == Judgement.PARTIAL

    def test_disjoint_wrong(self):
        assert judge({"a"}, {"b"}) == Judgement.WRONG

    def test_intent_identity_wins(self):
        assert judge({"wrong"}, {"right"}, "population", "population") == Judgement.RIGHT

    def test_related_intent_partial(self):
        result = judge({"x"}, {"y"}, "area", "population", related_intents=("area",))
        assert result == Judgement.PARTIAL

    def test_unrelated_intent_falls_to_values(self):
        result = judge({"x"}, {"y"}, "dob", "population", related_intents=("area",))
        assert result == Judgement.WRONG

    def test_empty_gold_wrong(self):
        assert judge({"a"}, set()) == Judgement.WRONG


class TestQALDMetrics:
    def test_paper_formulas(self):
        """Check P, P*, R, R* against hand-computed values."""
        m = QALDMetrics()
        # 10 questions, 6 BFQ; processed 5, right 3, partial 1
        outcomes = [
            (True, True, Judgement.RIGHT),
            (True, True, Judgement.RIGHT),
            (True, True, Judgement.PARTIAL),
            (False, True, Judgement.RIGHT),
            (False, True, Judgement.WRONG),
            (True, False, None),
            (True, False, None),
            (True, False, None),
            (False, False, None),
            (False, False, None),
        ]
        for is_bfq, processed, judgement in outcomes:
            m.record(is_bfq, processed, judgement)
        assert m.n_total == 10 and m.n_bfq == 6
        assert m.processed == 5
        assert m.precision == pytest.approx(3 / 5)
        assert m.precision_star == pytest.approx(4 / 5)
        assert m.recall == pytest.approx(3 / 10)
        assert m.recall_star == pytest.approx(4 / 10)
        # the paper's R_BFQ = #ri / #BFQ uses the overall right count
        assert m.recall_bfq == pytest.approx(3 / 6)
        assert m.precision_bfq == pytest.approx(2 / 3)

    def test_zero_division_safe(self):
        m = QALDMetrics()
        assert m.precision == 0.0
        assert m.recall == 0.0
        assert m.recall_bfq == 0.0

    def test_as_row_keys(self):
        row = QALDMetrics().as_row()
        assert set(row) == {"#pro", "#ri", "#par", "R", "R_BFQ", "R*", "R*_BFQ", "P", "P*"}


class TestWebQMetrics:
    def test_perfect_answer(self):
        m = WebQMetrics()
        m.record({"a", "b"}, "a", {"a", "b"})
        assert m.f1 == pytest.approx(1.0)
        assert m.precision_at_1 == pytest.approx(1.0)

    def test_partial_answer_f1(self):
        m = WebQMetrics()
        m.record({"a"}, "a", {"a", "b"})  # P=1, R=0.5 -> F1 = 2/3
        assert m.f1 == pytest.approx(2 / 3)

    def test_unanswered_scores_zero(self):
        m = WebQMetrics()
        m.record(set(), None, {"a"})
        assert m.f1 == 0.0
        assert m.n_answered == 0

    def test_precision_over_answered_only(self):
        m = WebQMetrics()
        m.record({"a"}, "a", {"a"})  # answered, P=1
        m.record(set(), None, {"b"})  # unanswered
        assert m.precision == pytest.approx(1.0)
        assert m.recall == pytest.approx(0.5)

    def test_top1_miss(self):
        m = WebQMetrics()
        m.record({"a", "b"}, "b", {"a"})
        assert m.precision_at_1 == 0.0


class TestRunners:
    def test_evaluate_qald_counts_consistent(self, suite, kbqa_fb):
        metrics, records = evaluate_qald(kbqa_fb, suite.benchmark("qald3"), suite.freebase)
        assert metrics.n_total == 99
        assert metrics.n_bfq == 41
        assert len(records) == 99
        assert metrics.processed == sum(1 for r in records if r.processed)
        assert metrics.right + metrics.partial <= metrics.processed

    def test_kbqa_shape_high_precision_bounded_recall(self, suite, kbqa_fb):
        """The paper's headline: precision high, recall bounded by BFQs."""
        metrics, _ = evaluate_qald(kbqa_fb, suite.benchmark("qald3"), suite.freebase)
        assert metrics.precision >= 0.75
        assert metrics.recall <= metrics.n_bfq / metrics.n_total + 0.01
        assert metrics.recall_bfq > metrics.recall

    def test_evaluate_webquestions(self, suite, kbqa_fb):
        metrics, records = evaluate_webquestions(kbqa_fb, suite.benchmark("webquestions"))
        assert metrics.n_total == 200
        assert len(records) == 200
        assert 0 < metrics.f1 < 1
        assert metrics.precision > 0.7  # KBQA: precise when it answers

    def test_records_carry_judgements(self, suite, kbqa_fb):
        _metrics, records = evaluate_qald(kbqa_fb, suite.benchmark("qald5"), suite.freebase)
        judged = [r for r in records if r.judgement is not None]
        assert judged
        assert all(r.processed for r in judged)
