"""Telemetry spine contract: histograms, windows, merging, Prometheus.

The metrics layer steers the adaptive controller and feeds ``/metrics``,
so its numerical honesty is load-bearing:

* log-bucket percentiles must bound the exact sample quantile from above
  within one bucket's relative resolution (the controller over- rather
  than under-reacts);
* windowed views must forget old traffic (the controller reacts to the
  recent p99, not the lifetime one) — driven with injected clocks, no
  sleeps;
* merging histograms/states must equal recording everything into one
  (the multi-process ``/metrics`` aggregation path);
* the Prometheus exposition must round-trip through the validating
  parser with monotonic cumulative buckets;
* ``AsyncAnswerer.snapshot()`` must carry every ``ServeStats`` field —
  the drift guard for counters added in later PRs.
"""

import dataclasses
import random
import statistics

import pytest

from repro.serve.async_answerer import AsyncAnswerer, ServeConfig, ServeStats
from repro.serve.metrics import (
    BUCKET_GROWTH,
    Histogram,
    ServeMetrics,
    WindowedHistogram,
    merge_states,
    parse_prometheus_text,
    render_prometheus,
)


class TestHistogram:
    def test_percentile_bounds_exact_quantile_within_resolution(self):
        rng = random.Random(11)
        samples = [rng.lognormvariate(1.0, 1.0) for _ in range(4000)]
        hist = Histogram()
        for value in samples:
            hist.record(value)
        exact = statistics.quantiles(samples, n=100, method="inclusive")
        for q, reference in ((50, exact[49]), (95, exact[94]), (99, exact[98])):
            reported = hist.percentile(q)
            # conservative: the bucket's upper bound, so >= the exact value
            # (minus float fuzz) and within one bucket growth factor of it
            assert reported >= reference * 0.999
            assert reported <= reference * BUCKET_GROWTH * 1.001

    def test_empty_and_single_sample(self):
        hist = Histogram()
        assert hist.percentile(99) is None
        assert hist.mean() is None
        hist.record(3.0)
        assert hist.count == 1
        assert hist.percentile(50) >= 3.0
        assert hist.mean() == 3.0

    def test_merge_equals_single_recording(self):
        rng = random.Random(5)
        values = [rng.uniform(0.01, 5000.0) for _ in range(500)]
        one = Histogram()
        left, right = Histogram(), Histogram()
        for i, value in enumerate(values):
            one.record(value)
            (left if i % 2 else right).record(value)
        left.merge(right)
        assert left.counts == one.counts
        assert left.count == one.count
        assert left.sum_ms == pytest.approx(one.sum_ms)

    def test_state_roundtrip_and_bucket_validation(self):
        hist = Histogram()
        for value in (0.1, 1.0, 10.0, 100.0):
            hist.record(value)
        restored = Histogram.from_state(hist.to_state())
        assert restored.counts == hist.counts
        assert restored.count == hist.count
        with pytest.raises(ValueError):
            Histogram.from_state({"counts": [1, 2, 3]})

    def test_overflow_bucket(self):
        hist = Histogram()
        hist.record(10_000_000.0)  # far past the last bound
        assert hist.count == 1
        assert hist.percentile(50) > 80_000.0


class TestWindowedHistogram:
    def test_window_forgets_old_traffic(self):
        wh = WindowedHistogram(window_s=1.0, windows=4)
        for _ in range(100):
            wh.record(500.0, now=0.5)  # slow burst at t=0.5
        view, _span = wh.view(now=0.6)
        assert view.count == 100
        assert view.percentile(99) >= 500.0
        # 10 windows later the burst has rotated out of the ring
        for _ in range(10):
            wh.record(1.0, now=10.5)
        view, _span = wh.view(now=10.6)
        assert view.count == 10
        assert view.percentile(99) < 500.0
        # but the cumulative total keeps everything (Prometheus view)
        assert wh.total.count == 110

    def test_slot_recycled_lazily_on_next_record(self):
        wh = WindowedHistogram(window_s=1.0, windows=2)
        wh.record(1.0, now=0.0)
        wh.record(2.0, now=1.0)
        # t=2 maps to the slot t=0 used; the old epoch's samples must go
        wh.record(3.0, now=2.0)
        view, _span = wh.view(now=2.0)
        assert view.count == 2  # t=1 and t=2 samples, not t=0


class TestServeMetrics:
    def test_tainted_samples_hidden_from_controller_view(self):
        metrics = ServeMetrics()
        for _ in range(20):
            metrics.observe_total(1.0, now=100.0)
        for _ in range(5):
            metrics.observe_total(900.0, tainted=True, now=100.0)
        view = metrics.controller_view(now=100.0)
        assert view["count"] == 20
        assert view["p99_ms"] < 900.0  # the crash-retry spike cannot steer
        assert metrics.tainted == 5
        # the total stage still records everything (honest /stats)
        snap = metrics.snapshot(now=100.0)
        assert snap["stages"]["total"]["count"] == 25
        assert snap["tainted_excluded"] == 5

    def test_tenant_counters(self):
        metrics = ServeMetrics()
        metrics.tenant_inc("gold", "requests")
        metrics.tenant_inc("gold", "requests")
        metrics.tenant_inc("free", "quota_rejected", 3)
        snap = metrics.snapshot()
        assert snap["tenants"]["gold"]["requests"] == 2
        assert snap["tenants"]["free"]["quota_rejected"] == 3

    def test_merge_states_equals_single_instance(self):
        a, b = ServeMetrics(), ServeMetrics()
        one = ServeMetrics()
        rng = random.Random(3)
        for i in range(200):
            value = rng.uniform(0.1, 50.0)
            (a if i % 2 else b).observe_total(value, now=1.0)
            one.observe_total(value, now=1.0)
        a.tenant_inc("t", "requests", 7)
        one.tenant_inc("t", "requests", 7)
        merged = merge_states([a.state(), b.state()])
        single = merge_states([one.state()])
        assert merged["stages"]["total"]["counts"] == single["stages"]["total"]["counts"]
        assert merged["stages"]["total"]["count"] == single["stages"]["total"]["count"]
        assert merged["stages"]["total"]["sum_ms"] == pytest.approx(
            single["stages"]["total"]["sum_ms"]
        )
        assert merged["tenants"] == single["tenants"]

    def test_merge_states_tolerates_empty_histogram_states(self):
        """A replica that dumped before seeing traffic (``{}`` stage states,
        or no stages at all) must merge as a no-op, not crash."""
        live = ServeMetrics()
        for _ in range(10):
            live.observe_total(5.0, now=1.0)
        reference = merge_states([live.state()])
        merged = merge_states(
            [
                {"stages": {"total": {}}},  # empty dump, no counts key content
                {"stages": {"total": {"counts": [], "sum_ms": 0.0, "count": 0}}},
                {},  # no stages at all
                live.state(),
            ]
        )
        assert merged["stages"]["total"] == reference["stages"]["total"]

    def test_merge_states_rejects_layout_mismatch(self):
        """A bucket layout that disagrees with this process's bounds must
        raise (naming the stage), never positionally mis-bin the samples."""
        live = ServeMetrics()
        live.observe_total(5.0, now=1.0)
        alien = {"stages": {"evaluate": {"counts": [3, 4], "sum_ms": 9.0, "count": 7}}}
        with pytest.raises(ValueError, match="evaluate"):
            merge_states([live.state(), alien])
        # samples without buckets are corrupt, not empty: refuse to drop them
        corrupt = {"stages": {"total": {"counts": [], "count": 12}}}
        with pytest.raises(ValueError, match="total"):
            merge_states([corrupt])
        # non-dict histogram state is rejected with the stage named
        with pytest.raises(ValueError, match="queue_wait"):
            merge_states([{"stages": {"queue_wait": [1, 2, 3]}}])

    def test_rate_qps_from_window_span(self):
        metrics = ServeMetrics(window_s=0.5, windows=8)
        for i in range(100):
            metrics.observe_total(1.0, now=10.0 + (i % 4) * 0.5)
        view = metrics.controller_view(now=11.5)
        assert view["count"] == 100
        assert view["rate_qps"] == pytest.approx(100 / 2.0)  # 4 live windows


class TestPrometheus:
    def _populated_state(self):
        metrics = ServeMetrics()
        rng = random.Random(9)
        for _ in range(300):
            metrics.observe("total", rng.uniform(0.05, 2000.0), now=1.0)
            metrics.observe("evaluate", rng.uniform(0.05, 100.0), now=1.0)
        metrics.observe_total(5.0, tainted=True, now=1.0)
        metrics.tenant_inc('we"ird\\name', "requests", 2)
        state = metrics.state()
        state["counters"] = {"requests": 301, "batches": 44}
        return state

    def test_render_parse_roundtrip(self):
        text = render_prometheus(
            self._populated_state(), {"kbqa_batch_window_ms": 2.5}
        )
        series = parse_prometheus_text(text)
        assert "kbqa_stage_latency_ms_bucket" in series
        assert "kbqa_stage_latency_ms_count" in series
        assert "kbqa_serve_events_total" in series
        assert "kbqa_tenant_events_total" in series
        assert series["kbqa_batch_window_ms"] == [({}, 2.5)]
        # label escaping round-trips
        tenants = {
            labels["tenant"] for labels, _ in series["kbqa_tenant_events_total"]
        }
        assert 'we"ird\\name' in tenants

    def test_inf_bucket_equals_count(self):
        text = render_prometheus(self._populated_state())
        series = parse_prometheus_text(text)
        counts = {
            labels["stage"]: value
            for labels, value in series["kbqa_stage_latency_ms_count"]
        }
        inf = {
            labels["stage"]: value
            for labels, value in series["kbqa_stage_latency_ms_bucket"]
            if labels["le"] == "+Inf"
        }
        assert inf == counts

    def test_parser_rejects_malformed(self):
        with pytest.raises(ValueError):
            parse_prometheus_text("kbqa_thing notanumber\n")
        with pytest.raises(ValueError):
            parse_prometheus_text('kbqa_thing{le="0.1" 3\n')
        with pytest.raises(ValueError):
            parse_prometheus_text("bad name{} 1\n")
        # non-monotonic cumulative buckets are a framing bug, not a style nit
        with pytest.raises(ValueError):
            parse_prometheus_text(
                'x_bucket{le="1"} 5\nx_bucket{le="2"} 3\nx_bucket{le="+Inf"} 5\n'
            )


class TestStatsDrift:
    def test_snapshot_carries_every_serve_stats_field(self):
        """The satellite guard: a counter added to ``ServeStats`` must flow
        into ``snapshot()`` (it is derived via ``dataclasses.asdict``), so
        ``/stats`` and the bench error-class rows can never silently drop
        one again."""

        class _Target:
            def answer_many(self, questions):
                raise AssertionError("never evaluated")

        answerer = AsyncAnswerer(_Target(), ServeConfig(workers=1))
        snapshot = answerer.snapshot()
        stat_fields = set(dataclasses.asdict(ServeStats()))
        missing = stat_fields - set(snapshot)
        assert not missing, f"snapshot() dropped ServeStats fields: {sorted(missing)}"
