"""ExpandedStore persistence: save -> load round trip, format guards, and
training resumption (``KBQA.train(..., expanded=...)`` must answer without
re-running ``expand_predicates``)."""

import pytest

import repro.core.learner as learner_module
from repro.core.system import KBQA
from repro.kb.expansion import (
    EXPANSION_FORMAT_VERSION,
    EXPANSION_MAGIC,
    ExpandedStore,
    expand_predicates,
)
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


@pytest.fixture()
def expanded(suite):
    seeds = [e.node for e in suite.world.of_type("person")[:12]]
    seeds += [e.node for e in suite.world.of_type("city")[:6]]
    return expand_predicates(
        suite.freebase.store, seeds, max_length=3, record_reach=True
    )


class TestRoundTrip:
    def test_triples_stats_and_inventory_survive(self, expanded, tmp_path):
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        assert len(loaded) == len(expanded) > 0
        assert loaded.stats() == expanded.stats()
        assert loaded.max_length == expanded.max_length
        assert loaded.tail_predicates == expanded.tail_predicates
        assert {(s, str(p), o) for s, p, o in loaded.triples()} == {
            (s, str(p), o) for s, p, o in expanded.triples()
        }
        assert loaded.distinct_paths() == expanded.distinct_paths()
        assert set(loaded.subjects()) == set(expanded.subjects())

    def test_frozen_views_equal_after_reload(self, expanded, tmp_path):
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        subject, p_plus, obj = next(expanded.triples())
        assert loaded.objects(subject, p_plus) == expanded.objects(subject, p_plus)
        assert loaded.paths_between(subject, obj) == expanded.paths_between(subject, obj)
        assert loaded.paths_of(subject) == expanded.paths_of(subject)
        # the reloaded store serves shared frozen views exactly like the original
        assert loaded.objects(subject, p_plus) is loaded.objects(subject, p_plus)

    def test_seed_and_reach_provenance_survive(self, expanded, tmp_path):
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        decode_old = expanded.dictionary.decode
        decode_new = loaded.dictionary.decode
        assert {decode_new(s) for s in loaded.seed_ids} == {
            decode_old(s) for s in expanded.seed_ids
        }
        old_reach = {
            decode_old(node): {decode_old(s) for s in seeds}
            for node, seeds in expanded.reach_items()
        }
        new_reach = {
            decode_new(node): {decode_new(s) for s in seeds}
            for node, seeds in loaded.reach_items()
        }
        assert new_reach == old_reach

    def test_save_is_deterministic(self, expanded, tmp_path):
        first = tmp_path / "first.kbqa"
        second = tmp_path / "second.kbqa"
        expanded.save(first)
        expanded.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_reload_of_reload_is_byte_identical(self, expanded, tmp_path):
        original = tmp_path / "original.kbqa"
        again = tmp_path / "again.kbqa"
        expanded.save(original)
        ExpandedStore.load(original).save(again)
        assert original.read_bytes() == again.read_bytes()


class TestFormatGuards:
    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.kbqa"
        path.write_text("NOT-AN-EXPANSION 1\n{}\n")
        with pytest.raises(ValueError, match=EXPANSION_MAGIC):
            ExpandedStore.load(path)

    def test_rejects_unsupported_version(self, tmp_path):
        path = tmp_path / "future.kbqa"
        path.write_text(f"{EXPANSION_MAGIC} {EXPANSION_FORMAT_VERSION + 1}\n{{}}\n")
        with pytest.raises(ValueError, match="version"):
            ExpandedStore.load(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.kbqa"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            ExpandedStore.load(path)

    def test_rejects_truncated_triples(self, expanded, tmp_path):
        path = tmp_path / "truncated.kbqa"
        expanded.save(path)
        lines = path.read_text().splitlines()
        # drop the final subject group line but keep the header counts
        n_reach = sum(1 for _ in expanded.reach_items())
        del lines[-1 - n_reach]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises((ValueError, IndexError)):
            ExpandedStore.load(path)

    def test_rejects_out_of_range_ids_at_load_time(self, tmp_path):
        """Corrupt ids must fail the documented load-time ValueError, not a
        KeyError at first decode."""
        kb = TripleStore()
        kb.add("s", "name", make_literal("x"))
        expanded = expand_predicates(kb, ["s"], max_length=1)
        path = tmp_path / "corrupt.kbqa"
        expanded.save(path)
        lines = path.read_text().splitlines()
        # the last line is the single subject group: [s, [[p, [o]]]] — point
        # its object id far past the dictionary
        import json

        s_id, groups = json.loads(lines[-1])
        groups[0][1] = [9999]
        lines[-1] = json.dumps([s_id, groups])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="out of range"):
            ExpandedStore.load(path)

    def test_mismatched_max_length_rejected_at_train(self, suite, tmp_path):
        """A k=2 artifact must not silently override a k=3 learner config."""
        seeds = [e.node for e in suite.world.of_type("person")[:4]]
        short = expand_predicates(suite.freebase.store, seeds, max_length=2)
        path = tmp_path / "short.kbqa"
        short.save(path)
        with pytest.raises(ValueError, match="max_length"):
            KBQA.train(
                suite.freebase,
                suite.corpus,
                suite.conceptualizer,
                expanded=ExpandedStore.load(path),
            )

    def test_special_characters_round_trip(self, tmp_path):
        kb = TripleStore()
        tricky = make_literal('line\nbreak "and\ttab"')
        kb.add("s", "name", tricky)
        expanded = expand_predicates(kb, ["s"], max_length=1)
        path = tmp_path / "tricky.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        assert loaded.objects("s", PredicatePath.single("name")) == {tricky}


class TestTrainingResumption:
    def test_train_from_saved_expansion_skips_the_scan(
        self, suite, kbqa_fb, tmp_path, monkeypatch
    ):
        """Acceptance: a saved expansion reloads and answers without
        re-running ``expand_predicates``."""
        expanded = kbqa_fb.learn_result.expanded
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)

        def _forbidden(*args, **kwargs):
            raise AssertionError("expand_predicates must not run on resume")

        monkeypatch.setattr(learner_module, "expand_predicates", _forbidden)
        resumed = KBQA.train(
            suite.freebase, suite.corpus, suite.conceptualizer, expanded=loaded
        )
        questions = [q.question for q in suite.benchmark("qald3").bfqs()]
        assert resumed.answer_many(questions) == kbqa_fb.answer_many(questions)
        assert resumed.model.n_templates == kbqa_fb.model.n_templates


class TestExpandCli:
    def test_save_then_load(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "expansion.kbqa"
        assert main(["expand", "--scale", "small", "--save", str(path)]) == 0
        assert path.is_file()
        saved = capsys.readouterr().out
        assert "saved expansion" in saved and "spo_triples=" in saved
        assert main(["expand", "--load", str(path)]) == 0
        loaded = capsys.readouterr().out
        assert "loaded expansion" in loaded
        # identical inventory lines after the save/load banner
        assert saved.splitlines()[1:] == loaded.splitlines()[1:]

    def test_requires_exactly_one_of_save_load(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["expand", "--scale", "small"]) == 1
        assert "exactly one of" in capsys.readouterr().err
        path = tmp_path / "x.kbqa"
        code = main(
            ["expand", "--save", str(path), "--load", str(path), "--scale", "small"]
        )
        assert code == 1

    def test_load_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["expand", "--load", str(tmp_path / "missing.kbqa")]) == 1
        assert "error" in capsys.readouterr().err
