"""ExpandedStore persistence: save -> load round trip, format guards, and
training resumption (``KBQA.train(..., expanded=...)`` must answer without
re-running ``expand_predicates``).

Three artifact formats are locked down here: the v1 line-JSON layout, the
binary mmap v2 layout (`repro.kb.expanded_v2`), and the disk-native v3
layout (`repro.kb.expanded_v3`) whose sorted index sections answer lookups
by binary search straight off the mmap.  The equivalence suites prove the
formats are interchangeable to the byte: converting in any direction
reproduces the other side's canonical bytes, content (seeds, tails, reach)
survives, and systems trained from any artifact answer identically — with
the v3 store staying mapped (zero dict materialization) through serving.
"""

import struct

import pytest

import repro.core.learner as learner_module
from repro.core.system import KBQA
from repro.kb.expanded_v2 import EXPANSION_V2_MAGIC, EXPANSION_V2_VERSION, is_v2_file
from repro.kb.expanded_v3 import EXPANSION_V3_MAGIC, EXPANSION_V3_VERSION, is_v3_file
from repro.kb.expansion import (
    EXPANDED_FORMAT_ENV,
    EXPANSION_FORMAT_VERSION,
    EXPANSION_MAGIC,
    ExpandedStore,
    expand_predicates,
)
from repro.kb.paths import PredicatePath
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal


@pytest.fixture()
def expanded(suite):
    seeds = [e.node for e in suite.world.of_type("person")[:12]]
    seeds += [e.node for e in suite.world.of_type("city")[:6]]
    return expand_predicates(
        suite.freebase.store, seeds, max_length=3, record_reach=True
    )


class TestRoundTrip:
    def test_triples_stats_and_inventory_survive(self, expanded, tmp_path):
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        assert len(loaded) == len(expanded) > 0
        assert loaded.stats() == expanded.stats()
        assert loaded.max_length == expanded.max_length
        assert loaded.tail_predicates == expanded.tail_predicates
        assert {(s, str(p), o) for s, p, o in loaded.triples()} == {
            (s, str(p), o) for s, p, o in expanded.triples()
        }
        assert loaded.distinct_paths() == expanded.distinct_paths()
        assert set(loaded.subjects()) == set(expanded.subjects())

    def test_frozen_views_equal_after_reload(self, expanded, tmp_path):
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        subject, p_plus, obj = next(expanded.triples())
        assert loaded.objects(subject, p_plus) == expanded.objects(subject, p_plus)
        assert loaded.paths_between(subject, obj) == expanded.paths_between(subject, obj)
        assert loaded.paths_of(subject) == expanded.paths_of(subject)
        # the reloaded store serves shared frozen views exactly like the original
        assert loaded.objects(subject, p_plus) is loaded.objects(subject, p_plus)

    def test_seed_and_reach_provenance_survive(self, expanded, tmp_path):
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        decode_old = expanded.dictionary.decode
        decode_new = loaded.dictionary.decode
        assert {decode_new(s) for s in loaded.seed_ids} == {
            decode_old(s) for s in expanded.seed_ids
        }
        old_reach = {
            decode_old(node): {decode_old(s) for s in seeds}
            for node, seeds in expanded.reach_items()
        }
        new_reach = {
            decode_new(node): {decode_new(s) for s in seeds}
            for node, seeds in loaded.reach_items()
        }
        assert new_reach == old_reach

    def test_save_is_deterministic(self, expanded, tmp_path):
        first = tmp_path / "first.kbqa"
        second = tmp_path / "second.kbqa"
        expanded.save(first)
        expanded.save(second)
        assert first.read_bytes() == second.read_bytes()

    def test_reload_of_reload_is_byte_identical(self, expanded, tmp_path):
        original = tmp_path / "original.kbqa"
        again = tmp_path / "again.kbqa"
        expanded.save(original)
        ExpandedStore.load(original).save(again)
        assert original.read_bytes() == again.read_bytes()


class TestFormatGuards:
    def test_rejects_wrong_magic(self, tmp_path):
        path = tmp_path / "bad.kbqa"
        path.write_text("NOT-AN-EXPANSION 1\n{}\n")
        with pytest.raises(ValueError, match=EXPANSION_MAGIC):
            ExpandedStore.load(path)

    def test_rejects_unsupported_version(self, tmp_path):
        path = tmp_path / "future.kbqa"
        path.write_text(f"{EXPANSION_MAGIC} {EXPANSION_FORMAT_VERSION + 1}\n{{}}\n")
        with pytest.raises(ValueError, match="version"):
            ExpandedStore.load(path)

    def test_rejects_empty_file(self, tmp_path):
        path = tmp_path / "empty.kbqa"
        path.write_text("")
        with pytest.raises(ValueError, match="empty"):
            ExpandedStore.load(path)

    def test_rejects_truncated_triples(self, expanded, tmp_path):
        path = tmp_path / "truncated.kbqa"
        expanded.save(path, format="v1")  # this test edits v1 lines
        lines = path.read_text().splitlines()
        # drop the final subject group line but keep the header counts
        n_reach = sum(1 for _ in expanded.reach_items())
        del lines[-1 - n_reach]
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises((ValueError, IndexError)):
            ExpandedStore.load(path)

    def test_rejects_out_of_range_ids_at_load_time(self, tmp_path):
        """Corrupt ids must fail the documented load-time ValueError, not a
        KeyError at first decode."""
        kb = TripleStore()
        kb.add("s", "name", make_literal("x"))
        expanded = expand_predicates(kb, ["s"], max_length=1)
        path = tmp_path / "corrupt.kbqa"
        expanded.save(path, format="v1")  # this test edits v1 lines
        lines = path.read_text().splitlines()
        # the last line is the single subject group: [s, [[p, [o]]]] — point
        # its object id far past the dictionary
        import json

        s_id, groups = json.loads(lines[-1])
        groups[0][1] = [9999]
        lines[-1] = json.dumps([s_id, groups])
        path.write_text("\n".join(lines) + "\n")
        with pytest.raises(ValueError, match="out of range"):
            ExpandedStore.load(path)

    def test_mismatched_max_length_rejected_at_train(self, suite, tmp_path):
        """A k=2 artifact must not silently override a k=3 learner config."""
        seeds = [e.node for e in suite.world.of_type("person")[:4]]
        short = expand_predicates(suite.freebase.store, seeds, max_length=2)
        path = tmp_path / "short.kbqa"
        short.save(path)
        with pytest.raises(ValueError, match="max_length"):
            KBQA.train(
                suite.freebase,
                suite.corpus,
                suite.conceptualizer,
                expanded=ExpandedStore.load(path),
            )

    def test_special_characters_round_trip(self, tmp_path):
        kb = TripleStore()
        tricky = make_literal('line\nbreak "and\ttab"')
        kb.add("s", "name", tricky)
        expanded = expand_predicates(kb, ["s"], max_length=1)
        path = tmp_path / "tricky.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)
        assert loaded.objects("s", PredicatePath.single("name")) == {tricky}


class TestV2Format:
    """The binary mmap v2 artifact: byte-level v1<->v2 equivalence plus the
    rejection paths a corrupted/foreign v2 file must take."""

    def test_v1_v2_round_trip_is_byte_identical_both_ways(self, expanded, tmp_path):
        """Acceptance: converting v2 -> v1 reproduces the direct v1 bytes,
        and v1 -> v2 reproduces the direct v2 bytes."""
        v1, v2 = tmp_path / "a.v1", tmp_path / "a.v2"
        expanded.save(v1, format="v1")
        expanded.save(v2, format="v2")
        assert is_v2_file(v2) and not is_v2_file(v1)
        via_v2 = tmp_path / "b.v1"
        ExpandedStore.load(v2).save(via_v2, format="v1")
        assert via_v2.read_bytes() == v1.read_bytes()
        via_v1 = tmp_path / "b.v2"
        ExpandedStore.load(v1).save(via_v1, format="v2")
        assert via_v1.read_bytes() == v2.read_bytes()

    def test_v2_save_is_deterministic(self, expanded, tmp_path):
        first, second = tmp_path / "first.v2", tmp_path / "second.v2"
        expanded.save(first, format="v2")
        expanded.save(second, format="v2")
        assert first.read_bytes() == second.read_bytes()

    def test_seeds_tails_and_reach_survive_v2(self, expanded, tmp_path):
        path = tmp_path / "expansion.v2"
        expanded.save(path, format="v2")
        loaded = ExpandedStore.load(path)
        assert loaded.tail_predicates == expanded.tail_predicates
        assert loaded.max_length == expanded.max_length
        assert loaded.stats() == expanded.stats()
        decode_old, decode_new = expanded.dictionary.decode, loaded.dictionary.decode
        assert {decode_new(s) for s in loaded.seed_ids} == {
            decode_old(s) for s in expanded.seed_ids
        }
        assert {
            decode_new(n): {decode_new(s) for s in seeds}
            for n, seeds in loaded.reach_items()
        } == {
            decode_old(n): {decode_old(s) for s in seeds}
            for n, seeds in expanded.reach_items()
        }
        assert {(s, str(p), o) for s, p, o in loaded.triples()} == {
            (s, str(p), o) for s, p, o in expanded.triples()
        }

    def test_answer_many_identical_from_v1_and_v2_artifacts(
        self, suite, kbqa_fb, tmp_path
    ):
        """Acceptance: systems resumed from a v1 and a v2 artifact of the
        same expansion answer the qald3 BFQ set identically."""
        expanded = kbqa_fb.learn_result.expanded
        v1, v2 = tmp_path / "e.v1", tmp_path / "e.v2"
        expanded.save(v1, format="v1")
        expanded.save(v2, format="v2")
        questions = [q.question for q in suite.benchmark("qald3").bfqs()]
        with KBQA.train(
            suite.freebase, suite.corpus, suite.conceptualizer,
            expanded=ExpandedStore.load(v1),
        ) as from_v1, KBQA.train(
            suite.freebase, suite.corpus, suite.conceptualizer,
            expanded=ExpandedStore.load(v2),
        ) as from_v2:
            assert from_v1.answer_many(questions) == from_v2.answer_many(questions)
            assert from_v2.answer_many(questions) == kbqa_fb.answer_many(questions)

    def test_special_characters_round_trip_v2(self, tmp_path):
        kb = TripleStore()
        tricky = make_literal('line\nbreak "and\ttab" é中')
        kb.add("s", "name", tricky)
        expanded = expand_predicates(kb, ["s"], max_length=1)
        path = tmp_path / "tricky.v2"
        expanded.save(path, format="v2")
        loaded = ExpandedStore.load(path)
        assert loaded.objects("s", PredicatePath.single("name")) == {tricky}

    def test_env_selects_v2_default(self, expanded, tmp_path, monkeypatch):
        """The CI leg's KBQA_EXPANDED_FORMAT=v2 must flip the *default*
        save format while format= stays authoritative."""
        monkeypatch.setenv(EXPANDED_FORMAT_ENV, "v2")
        by_env = tmp_path / "by_env.kbqa"
        expanded.save(by_env)
        assert is_v2_file(by_env)
        pinned = tmp_path / "pinned.kbqa"
        expanded.save(pinned, format="v1")
        assert not is_v2_file(pinned)
        monkeypatch.setenv(EXPANDED_FORMAT_ENV, "v9")
        with pytest.raises(ValueError, match="unknown expansion format"):
            expanded.save(tmp_path / "nope.kbqa")

    def test_rejects_truncated_v2(self, expanded, tmp_path):
        path = tmp_path / "whole.v2"
        expanded.save(path, format="v2")
        data = path.read_bytes()
        for cut in (len(data) - 7, len(data) // 2, 40):
            clipped = tmp_path / f"clipped-{cut}.v2"
            clipped.write_bytes(data[:cut])
            with pytest.raises(ValueError, match="truncat|header"):
                ExpandedStore.load(clipped)

    def test_rejects_version_mismatch_v2(self, expanded, tmp_path):
        path = tmp_path / "future.v2"
        expanded.save(path, format="v2")
        data = bytearray(path.read_bytes())
        # the version is the first u32 after the 8-byte magic
        struct.pack_into("<I", data, len(EXPANSION_V2_MAGIC), EXPANSION_V2_VERSION + 1)
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            ExpandedStore.load(path)

    def test_rejects_out_of_bounds_ids_v2(self, tmp_path):
        """A corrupt object id past the dictionary fails the documented
        load-time ValueError, before any decode uses it."""
        kb = TripleStore()
        kb.add("s", "name", make_literal("x"))
        expanded = expand_predicates(kb, ["s"], max_length=1)
        path = tmp_path / "corrupt.v2"
        expanded.save(path, format="v2")
        data = bytearray(path.read_bytes())
        # the single object id is the last u32 before the (empty) reach
        # sections; with one triple and no reach it is the final u32
        struct.pack_into("<I", data, len(data) - 4, 9999)
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="out of range"):
            ExpandedStore.load(path)

    def test_rejects_trailing_garbage_v2(self, expanded, tmp_path):
        path = tmp_path / "padded.v2"
        expanded.save(path, format="v2")
        path.write_bytes(path.read_bytes() + b"\x00\x00\x00\x00")
        with pytest.raises(ValueError, match="trailing"):
            ExpandedStore.load(path)

    def test_cli_expand_save_v2_and_sniffing_load(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "expansion.v2"
        code = main(
            ["expand", "--scale", "small", "--save", str(path),
             "--expanded-format", "v2"]
        )
        assert code == 0 and is_v2_file(path)
        saved = capsys.readouterr().out
        assert "saved expansion" in saved and "spo_triples=" in saved
        assert main(["expand", "--load", str(path)]) == 0
        loaded = capsys.readouterr().out
        # identical inventory whichever format backed the artifact
        assert saved.splitlines()[1:] == loaded.splitlines()[1:]


class TestV3Format:
    """The disk-native v3 artifact: lookups answered by binary search
    straight off the mmap (no dict materialization), byte-level v1/v2/v3
    interchangeability, and the rejection paths of a corrupt file — cheap
    structural ones at load, index-consistency ones via ``verify()`` (the
    ``kbqa expand --load`` integrity gate)."""

    def test_v2_v3_round_trip_is_byte_identical_both_ways(self, expanded, tmp_path):
        """Acceptance: converting v3 -> v2 reproduces the direct v2 bytes,
        and v2 -> v3 reproduces the direct v3 bytes (and v3 -> v1 the
        direct v1 bytes)."""
        v1, v2, v3 = tmp_path / "a.v1", tmp_path / "a.v2", tmp_path / "a.v3"
        expanded.save(v1, format="v1")
        expanded.save(v2, format="v2")
        expanded.save(v3, format="v3")
        assert is_v3_file(v3) and not is_v3_file(v2) and not is_v2_file(v3)
        via_v3 = tmp_path / "b.v2"
        ExpandedStore.load(v3).save(via_v3, format="v2")
        assert via_v3.read_bytes() == v2.read_bytes()
        via_v2 = tmp_path / "b.v3"
        ExpandedStore.load(v2).save(via_v2, format="v3")
        assert via_v2.read_bytes() == v3.read_bytes()
        via_v3_v1 = tmp_path / "b.v1"
        ExpandedStore.load(v3).save(via_v3_v1, format="v1")
        assert via_v3_v1.read_bytes() == v1.read_bytes()

    def test_v3_save_is_deterministic(self, expanded, tmp_path):
        first, second = tmp_path / "first.v3", tmp_path / "second.v3"
        expanded.save(first, format="v3")
        expanded.save(second, format="v3")
        assert first.read_bytes() == second.read_bytes()

    def test_loads_mapped_and_lookups_match_materialized(self, expanded, tmp_path):
        """Acceptance: every read API of the mapped store is byte-identical
        to the materialized reference, and serving those reads leaves the
        store mapped — zero dict materialization on the lookup path."""
        path = tmp_path / "expansion.v3"
        expanded.save(path, format="v3")
        mapped = ExpandedStore.load(path)
        reference = ExpandedStore.load(path).materialize()
        assert mapped.is_mapped and not reference.is_mapped
        mapped.verify()
        assert mapped.stats() == reference.stats() == expanded.stats()
        assert len(mapped) == len(reference)
        assert mapped.distinct_paths() == reference.distinct_paths()
        assert set(mapped.subjects()) == set(reference.subjects())
        assert {(s, str(p), o) for s, p, o in mapped.triples()} == {
            (s, str(p), o) for s, p, o in reference.triples()
        }
        for subject in reference.subjects():
            assert {str(p) for p in mapped.paths_of(subject)} == {
                str(p) for p in reference.paths_of(subject)
            }
            for p_plus in reference.paths_of(subject):
                assert mapped.objects(subject, p_plus) == reference.objects(
                    subject, p_plus
                )
                assert mapped.value_count(subject, p_plus) == reference.value_count(
                    subject, p_plus
                )
                for obj in reference.objects(subject, p_plus):
                    assert {str(p) for p in mapped.paths_between(subject, obj)} == {
                        str(p) for p in reference.paths_between(subject, obj)
                    }
        assert mapped.objects("no-such-subject", next(iter(reference.distinct_paths()))) == set()
        assert mapped.is_mapped, "a read materialized the mapped store"

    def test_seeds_tails_and_reach_survive_v3(self, expanded, tmp_path):
        path = tmp_path / "expansion.v3"
        expanded.save(path, format="v3")
        loaded = ExpandedStore.load(path)
        assert loaded.tail_predicates == expanded.tail_predicates
        assert loaded.max_length == expanded.max_length
        assert loaded.has_reach() == expanded.has_reach()
        decode_old, decode_new = expanded.dictionary.decode, loaded.dictionary.decode
        assert {decode_new(s) for s in loaded.seed_ids} == {
            decode_old(s) for s in expanded.seed_ids
        }
        assert {
            decode_new(n): {decode_new(s) for s in seeds}
            for n, seeds in loaded.reach_items()
        } == {
            decode_old(n): {decode_old(s) for s in seeds}
            for n, seeds in expanded.reach_items()
        }
        assert loaded.is_mapped

    def test_answer_many_identical_from_v3_artifact(self, suite, kbqa_fb, tmp_path):
        """Acceptance: a system resumed from a v3 artifact answers the qald3
        BFQ set byte-identically to the live reference — and the artifact
        store is still mapped afterwards (the serve path never built the
        dict indexes)."""
        expanded = kbqa_fb.learn_result.expanded
        path = tmp_path / "e.v3"
        expanded.save(path, format="v3")
        questions = [q.question for q in suite.benchmark("qald3").bfqs()]
        loaded = ExpandedStore.load(path)
        assert loaded.is_mapped
        with KBQA.train(
            suite.freebase, suite.corpus, suite.conceptualizer, expanded=loaded
        ) as from_v3:
            assert from_v3.answer_many(questions) == kbqa_fb.answer_many(questions)
            assert loaded.is_mapped, "serving materialized the mapped artifact"

    def test_write_materializes_automatically(self, expanded, tmp_path):
        path = tmp_path / "expansion.v3"
        expanded.save(path, format="v3")
        loaded = ExpandedStore.load(path)
        assert loaded.is_mapped
        before = {(s, str(p), o) for s, p, o in loaded.triples()}
        loaded.record("zz-new", PredicatePath.single("name"), make_literal("zz"))
        assert not loaded.is_mapped
        assert {(s, str(p), o) for s, p, o in loaded.triples()} == before | {
            ("zz-new", "name", make_literal("zz"))
        }

    def test_mapped_pickle_is_a_path_reference(self, expanded, tmp_path):
        import pickle

        path = tmp_path / "expansion.v3"
        expanded.save(path, format="v3")
        loaded = ExpandedStore.load(path)
        blob = pickle.dumps(loaded)
        assert len(blob) < 1024 < path.stat().st_size
        thawed = pickle.loads(blob)
        assert thawed.is_mapped
        assert {(s, str(p), o) for s, p, o in thawed.triples()} == {
            (s, str(p), o) for s, p, o in loaded.triples()
        }
        # a materialized store pickles by value (no file dependency)
        materialized_blob = pickle.dumps(loaded.materialize())
        assert len(materialized_blob) > len(blob)

    def test_env_selects_v3_default(self, expanded, tmp_path, monkeypatch):
        monkeypatch.setenv(EXPANDED_FORMAT_ENV, "v3")
        by_env = tmp_path / "by_env.kbqa"
        expanded.save(by_env)
        assert is_v3_file(by_env)
        pinned = tmp_path / "pinned.kbqa"
        expanded.save(pinned, format="v2")
        assert is_v2_file(pinned)

    def test_special_characters_round_trip_v3(self, tmp_path):
        kb = TripleStore()
        tricky = make_literal('line\nbreak "and\ttab" é中')
        kb.add("s", "name", tricky)
        expanded = expand_predicates(kb, ["s"], max_length=1)
        path = tmp_path / "tricky.v3"
        expanded.save(path, format="v3")
        loaded = ExpandedStore.load(path)
        assert loaded.is_mapped
        assert loaded.objects("s", PredicatePath.single("name")) == {tricky}

    def test_rejects_truncated_v3(self, expanded, tmp_path):
        path = tmp_path / "whole.v3"
        expanded.save(path, format="v3")
        data = path.read_bytes()
        for cut in (len(data) - 7, len(data) // 2, 40, 0):
            clipped = tmp_path / f"clipped-{cut}.v3"
            clipped.write_bytes(data[:cut])
            with pytest.raises(ValueError, match="truncat|header"):
                ExpandedStore.load(clipped)

    def test_rejects_version_mismatch_v3(self, expanded, tmp_path):
        path = tmp_path / "future.v3"
        expanded.save(path, format="v3")
        data = bytearray(path.read_bytes())
        struct.pack_into("<I", data, len(EXPANSION_V3_MAGIC), EXPANSION_V3_VERSION + 1)
        path.write_bytes(bytes(data))
        with pytest.raises(ValueError, match="version"):
            ExpandedStore.load(path)

    def test_rejects_trailing_garbage_v3(self, expanded, tmp_path):
        path = tmp_path / "padded.v3"
        expanded.save(path, format="v3")
        path.write_bytes(path.read_bytes() + b"\x00\x00\x00\x00")
        with pytest.raises(ValueError, match="trailing"):
            ExpandedStore.load(path)

    def test_verify_rejects_unsorted_seed_index(self, expanded, tmp_path):
        """Load stays O(1) on an unsorted index; the ``verify()`` sweep (run
        by ``kbqa expand --load``) is what rejects it."""
        path = tmp_path / "unsorted.v3"
        expanded.save(path, format="v3")
        data = bytearray(path.read_bytes())
        seed_ids = sorted(expanded.seed_ids)
        assert len(seed_ids) >= 2
        # walk the wire format to the seeds section: header, tails, terms,
        # termsort (blobs padded to 4-byte alignment), seeds
        header = struct.Struct("<8s14IQ")
        fields = header.unpack_from(data, 0)
        n_tails, n_terms, n_seeds = fields[3], fields[4], fields[5]
        tails_blob_len, terms_blob_len = fields[13], fields[15]
        offset = header.size
        offset += 4 * (n_tails + 1) + tails_blob_len + (-tails_blob_len) % 4
        offset += 8 * (n_terms + 1) + terms_blob_len + (-terms_blob_len) % 4
        offset += 4 * n_terms  # term-sort permutation
        assert n_seeds == len(seed_ids)
        assert data[offset : offset + 4 * n_seeds] == struct.pack(
            f"<{n_seeds}I", *seed_ids
        ), "seed section offset arithmetic out of step with the writer"
        swapped = [seed_ids[1], seed_ids[0]] + seed_ids[2:]
        data[offset : offset + 4 * n_seeds] = struct.pack(f"<{n_seeds}I", *swapped)
        path.write_bytes(bytes(data))
        corrupt = ExpandedStore.load(path)  # structural load succeeds
        with pytest.raises(ValueError, match="unsorted"):
            corrupt.verify()

    def test_verify_rejects_out_of_bounds_ids(self, expanded, tmp_path):
        """An id past the dictionary deep in the index sections passes the
        O(1) load and fails the full sweep."""
        path = tmp_path / "oob.v3"
        expanded.save(path, format="v3")
        data = bytearray(path.read_bytes())
        # the file ends with the reach seed-id u32 array
        struct.pack_into("<I", data, len(data) - 4, 0x7FFFFFFF)
        path.write_bytes(bytes(data))
        corrupt = ExpandedStore.load(path)
        with pytest.raises(ValueError):
            corrupt.verify()

    def test_cli_expand_save_v3_and_verifying_load(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "expansion.v3"
        code = main(
            ["expand", "--scale", "small", "--save", str(path),
             "--expanded-format", "v3"]
        )
        assert code == 0 and is_v3_file(path)
        saved = capsys.readouterr().out
        assert "saved expansion" in saved and "spo_triples=" in saved
        assert main(["expand", "--load", str(path)]) == 0
        loaded = capsys.readouterr().out
        assert saved.splitlines()[1:] == loaded.splitlines()[1:]

    def test_cli_load_rejects_corrupt_v3(self, tmp_path, capsys):
        """The --load integrity gate: a byte-flipped v3 artifact exits 1
        with the CLI error contract, caught by verify() even when the
        structural load succeeds."""
        from repro.cli import main

        path = tmp_path / "expansion.v3"
        assert main(
            ["expand", "--scale", "small", "--save", str(path),
             "--expanded-format", "v3"]
        ) == 0
        capsys.readouterr()
        data = bytearray(path.read_bytes())
        data[len(data) // 2] ^= 0xFF
        bad = tmp_path / "corrupt.v3"
        bad.write_bytes(bytes(data))
        assert main(["expand", "--load", str(bad)]) == 1
        err = capsys.readouterr().err
        assert err.startswith("kbqa expand: error:")


class TestV3RandomizedEquivalence:
    """Mapped binary-search answers vs materialized-dict answers across
    randomized KBs x shard counts — byte-identical everywhere."""

    @pytest.mark.parametrize("seed", [1, 23])
    @pytest.mark.parametrize("shards", [1, 3])
    def test_random_kb_lookup_equivalence(self, seed, shards, tmp_path):
        import random

        from repro.kb.sharded import ShardedTripleStore

        rng = random.Random(seed)
        kb = TripleStore() if shards == 1 else ShardedTripleStore(shards=shards)
        entities = [f"n{i}" for i in range(25)]
        predicates = [f"p{i}" for i in range(5)] + ["name"]
        for _ in range(250):
            kb.add(rng.choice(entities), rng.choice(predicates), rng.choice(
                entities + [make_literal(f"v{rng.randrange(10)}")]
            ))
        seeds = rng.sample(entities, 6)
        expanded = expand_predicates(kb, seeds, max_length=3, record_reach=True)
        path = tmp_path / f"r{seed}-{shards}.v3"
        expanded.save(path, format="v3")
        mapped = ExpandedStore.load(path)
        assert mapped.is_mapped
        mapped.verify()
        assert mapped.stats() == expanded.stats()
        assert {(s, str(p), o) for s, p, o in mapped.triples()} == {
            (s, str(p), o) for s, p, o in expanded.triples()
        }
        for subject in expanded.subjects():
            for p_plus in expanded.paths_of(subject):
                assert mapped.objects(subject, p_plus) == expanded.objects(
                    subject, p_plus
                )
                assert mapped.value_count(subject, p_plus) == expanded.value_count(
                    subject, p_plus
                )
        assert mapped.is_mapped


class TestTrainingResumption:
    def test_train_from_saved_expansion_skips_the_scan(
        self, suite, kbqa_fb, tmp_path, monkeypatch
    ):
        """Acceptance: a saved expansion reloads and answers without
        re-running ``expand_predicates``."""
        expanded = kbqa_fb.learn_result.expanded
        path = tmp_path / "expansion.kbqa"
        expanded.save(path)
        loaded = ExpandedStore.load(path)

        def _forbidden(*args, **kwargs):
            raise AssertionError("expand_predicates must not run on resume")

        monkeypatch.setattr(learner_module, "expand_predicates", _forbidden)
        resumed = KBQA.train(
            suite.freebase, suite.corpus, suite.conceptualizer, expanded=loaded
        )
        questions = [q.question for q in suite.benchmark("qald3").bfqs()]
        assert resumed.answer_many(questions) == kbqa_fb.answer_many(questions)
        assert resumed.model.n_templates == kbqa_fb.model.n_templates


class TestExpandCli:
    def test_save_then_load(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "expansion.kbqa"
        assert main(["expand", "--scale", "small", "--save", str(path)]) == 0
        assert path.is_file()
        saved = capsys.readouterr().out
        assert "saved expansion" in saved and "spo_triples=" in saved
        assert main(["expand", "--load", str(path)]) == 0
        loaded = capsys.readouterr().out
        assert "loaded expansion" in loaded
        # identical inventory lines after the save/load banner
        assert saved.splitlines()[1:] == loaded.splitlines()[1:]

    def test_requires_exactly_one_of_save_load(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["expand", "--scale", "small"]) == 1
        assert "exactly one of" in capsys.readouterr().err
        path = tmp_path / "x.kbqa"
        code = main(
            ["expand", "--save", str(path), "--load", str(path), "--scale", "small"]
        )
        assert code == 1

    def test_load_missing_file_fails_cleanly(self, tmp_path, capsys):
        from repro.cli import main

        assert main(["expand", "--load", str(tmp_path / "missing.kbqa")]) == 1
        assert "error" in capsys.readouterr().err
