"""Tests for gazetteer NER and entity linking."""

import pytest

from repro.nlp.ner import EntityRecognizer
from repro.nlp.tokenizer import tokenize


@pytest.fixture
def ner() -> EntityRecognizer:
    return EntityRecognizer({
        "barack obama": ["m.obama"],
        "obama": ["m.obama"],
        "michelle obama": ["m.michelle"],
        "honolulu": ["m.honolulu"],
        "apple": ["m.apple_co", "m.apple_fruit"],
        "new york": ["m.nyc"],
        "york": ["m.york"],
    })


class TestFindMentions:
    def test_longest_match_wins(self, ner):
        mentions = ner.find_mentions(tokenize("when was barack obama born?"))
        assert [m.surface for m in mentions] == ["barack obama"]

    def test_multiple_mentions(self, ner):
        mentions = ner.find_mentions(tokenize("is barack obama from honolulu?"))
        assert [m.surface for m in mentions] == ["barack obama", "honolulu"]

    def test_ambiguous_mention_links_all_candidates(self, ner):
        mentions = ner.find_mentions(tokenize("where is the headquarter of apple?"))
        assert len(mentions) == 1
        assert set(mentions[0].candidates) == {"m.apple_co", "m.apple_fruit"}

    def test_no_mentions(self, ner):
        assert ner.find_mentions(tokenize("what should i eat?")) == []

    def test_mention_spans_correct(self, ner):
        tokens = tokenize("when was barack obama born?")
        mention = ner.find_mentions(tokens)[0]
        assert tokens[mention.start : mention.end] == ["barack", "obama"]
        assert mention.length == 2

    def test_substring_name_not_matched_inside_longer(self, ner):
        # "new york" must win over "york".
        mentions = ner.find_mentions(tokenize("how big is new york?"))
        assert [m.surface for m in mentions] == ["new york"]

    def test_adjacent_mentions_not_merged(self, ner):
        mentions = ner.find_mentions(tokenize("obama honolulu"))
        assert [m.surface for m in mentions] == ["obama", "honolulu"]


class TestFindAllSpans:
    def test_includes_overlapping(self, ner):
        spans = ner.find_all_spans(tokenize("new york"))
        surfaces = {m.surface for m in spans}
        assert surfaces == {"new york", "york"}

    def test_all_spans_superset_of_mentions(self, ner):
        tokens = tokenize("is barack obama from honolulu?")
        greedy = {(m.start, m.end) for m in ner.find_mentions(tokens)}
        every = {(m.start, m.end) for m in ner.find_all_spans(tokens)}
        assert greedy <= every


class TestLookup:
    def test_exact_name(self, ner):
        assert ner.lookup("barack obama") == ("m.obama",)

    def test_case_insensitive(self, ner):
        assert ner.lookup("Barack Obama") == ("m.obama",)

    def test_missing(self, ner):
        assert ner.lookup("nobody") == ()


class TestAgainstCompiledKB:
    def test_every_world_entity_findable(self, suite):
        ner = EntityRecognizer(suite.freebase.gazetteer)
        for entity in list(suite.world.entities.values())[:100]:
            tokens = tokenize(f"tell me about {entity.name} please")
            mentions = ner.find_mentions(tokens)
            assert any(entity.node in m.candidates for m in mentions), entity.name

    def test_ambiguous_world_names_link_multiple_types(self, suite):
        ner = EntityRecognizer(suite.freebase.gazetteer)
        ambiguous = suite.world.ambiguous_names()
        assert ambiguous, "the world must contain designed ambiguity"
        name, nodes = next(iter(ambiguous.items()))
        assert set(ner.lookup(name)) == set(nodes)
