"""Tests for compiling the world into Freebase-like / DBpedia-like stores."""


from repro.data.world import LITERAL, SCHEMA_BY_INTENT
from repro.kb.paths import PredicatePath, follow
from repro.kb.triple import make_literal
from repro.nlp.question_class import AnswerType

from tests.conftest import pick_entity


class TestFreebaseCompile:
    def test_every_entity_has_name_edge(self, suite):
        store = suite.freebase.store
        for node, entity in list(suite.world.entities.items())[:200]:
            assert store.objects(node, "name") == {make_literal(entity.name)}

    def test_literal_facts_direct(self, suite):
        person = pick_entity(suite.world, "person", "dob")
        dob = person.get_fact("dob")[0]
        assert suite.freebase.store.has(person.node, "dob", make_literal(dob))

    def test_spouse_goes_through_cvt(self, suite):
        person = pick_entity(suite.world, "person", "spouse")
        store = suite.freebase.store
        # no direct spouse edge
        assert not store.objects(person.node, "spouse")
        # but the CVT path reaches the spouse's name
        path = PredicatePath(("marriage", "person", "name"))
        expected = {make_literal(n) for n in suite.world.gold_values(person.node, "spouse")}
        assert follow(store, person.node, path) == expected

    def test_cvt_nodes_have_decorations(self, suite):
        person = pick_entity(suite.world, "person", "spouse")
        store = suite.freebase.store
        cvts = store.objects(person.node, "marriage")
        assert cvts
        cvt = next(iter(cvts))
        assert store.objects(cvt, "date"), "marriage CVT should carry a date"

    def test_every_intent_path_resolves_for_some_entity(self, suite):
        """Each schema path must actually reach gold values in the store."""
        store = suite.freebase.store
        for schema in SCHEMA_BY_INTENT.values():
            path = suite.freebase.expected_path(schema.intent)
            resolved = False
            for etype in schema.domain_types:
                for entity in suite.world.of_type(etype):
                    if not entity.get_fact(schema.intent):
                        continue
                    expected = {
                        make_literal(v)
                        for v in suite.world.gold_values(entity.node, schema.intent)
                    }
                    if follow(store, entity.node, path) >= expected:
                        resolved = True
                        break
                if resolved:
                    break
            assert resolved, f"{schema.intent} unreachable via {path}"

    def test_category_edges_present(self, suite):
        person = suite.world.of_type("person")[0]
        categories = suite.freebase.store.objects(person.node, "category")
        assert "$person" in categories

    def test_alias_on_subset_of_persons(self, suite):
        store = suite.freebase.store
        with_alias = [
            p for p in suite.world.of_type("person")
            if store.objects(p.node, "alias")
        ]
        assert 0 < len(with_alias) < len(suite.world.of_type("person"))


class TestDBpediaCompile:
    def test_no_cvt_nodes(self, suite):
        assert all(
            not subject.startswith("cvt.")
            for subject in suite.dbpedia.store.subjects_iter()
        )

    def test_spouse_direct_edge(self, suite):
        person = pick_entity(suite.world, "person", "spouse")
        spouse_node = person.get_fact("spouse")[0]
        assert suite.dbpedia.store.has(person.node, "spouse", spouse_node)

    def test_dbp_predicate_names(self, suite):
        person = pick_entity(suite.world, "person", "dob")
        dob = person.get_fact("dob")[0]
        assert suite.dbpedia.store.has(person.node, "birthDate", make_literal(dob))
        assert not suite.dbpedia.store.objects(person.node, "dob")

    def test_smaller_than_freebase(self, suite):
        # CVT mediators and alias edges make the Freebase-like store bigger.
        assert len(suite.dbpedia.store) < len(suite.freebase.store)


class TestCompiledKBSchema:
    def test_intent_path_bijection(self, suite):
        for kb in (suite.freebase, suite.dbpedia):
            for intent, path in kb.path_for_intent.items():
                assert kb.intent_for_path[str(path)] == intent

    def test_answer_type_for_known_path(self, suite):
        path = suite.freebase.expected_path("dob")
        assert suite.freebase.answer_type_for_path(path) == AnswerType.DATE

    def test_answer_type_for_unknown_path(self, suite):
        weird = PredicatePath(("marriage", "person", "dob"))
        assert suite.freebase.answer_type_for_path(weird) == AnswerType.UNKNOWN

    def test_intent_of(self, suite):
        path = suite.freebase.expected_path("spouse")
        assert suite.freebase.intent_of(path) == "spouse"
        assert suite.freebase.intent_of(PredicatePath(("x",))) is None

    def test_related_intents(self, suite):
        assert "residence" in suite.freebase.related_intents("pob")

    def test_gazetteer_covers_world(self, suite):
        for name, nodes in list(suite.world.by_name.items())[:100]:
            assert suite.freebase.gazetteer[name] == nodes

    def test_value_kinds_consistent(self, suite):
        """ENTITY intents point at resource nodes, LITERAL at literals."""
        store = suite.freebase.store
        for schema in list(SCHEMA_BY_INTENT.values()):
            head = schema.fb_path[0]
            for etype in schema.domain_types:
                entity = next(
                    (e for e in suite.world.of_type(etype) if e.get_fact(schema.intent)),
                    None,
                )
                if entity is None:
                    continue
                objects = store.objects(entity.node, head)
                assert objects
                first = next(iter(objects))
                if schema.value_kind == LITERAL:
                    assert first.startswith('"')
                else:
                    assert not first.startswith('"')
                break
