"""Tests for the variant-question extension (ranking/comparison/listing...).

The paper's Sec 1 claim: BFQ capability unlocks these forms.  The extension
answers them by reformulating into learned-template BFQ probes.
"""

import pytest

from repro.core.variants import ExtendedKBQA, VariantAnswerer, _as_number, _singular


@pytest.fixture(scope="module")
def variants(suite, kbqa_fb) -> VariantAnswerer:
    return VariantAnswerer(kbqa_fb, suite.taxonomy)


@pytest.fixture(scope="module")
def extended(suite, kbqa_fb) -> ExtendedKBQA:
    return ExtendedKBQA(kbqa_fb, suite.taxonomy)


def _largest(world, etype, intent):
    candidates = [e for e in world.of_type(etype) if e.get_fact(intent)]
    return max(candidates, key=lambda e: int(e.get_fact(intent)[0]))


class TestSuperlative:
    def test_largest_population(self, suite, variants):
        expected = _largest(suite.world, "city", "population")
        result = variants.answer("which city has the largest population?")
        assert result is not None and result.kind == "superlative"
        assert result.value == expected.name

    def test_most_people_country(self, suite, variants):
        expected = _largest(suite.world, "country", "population")
        result = variants.answer("which country has the most people?")
        assert result is not None
        assert result.value == expected.name

    def test_rare_attribute_refuses_rather_than_guesses(self, variants):
        """'elevation' is a designed-rare intent: when its template was not
        learned, the probe chain must fail closed (no answer), never guess."""
        result = variants.answer("which mountain has the highest elevation?")
        if result is not None:  # learned at this seed/scale: must be right
            assert result.kind == "superlative"

    def test_unknown_concept_rejected(self, variants):
        assert variants.answer("which wizard has the largest beard?") is None


class TestComparison:
    def test_population_comparison(self, suite, variants):
        cities = [c for c in suite.world.of_type("city") if c.get_fact("population")][:2]
        a, b = cities
        winner = a if int(a.get_fact("population")[0]) >= int(b.get_fact("population")[0]) else b
        result = variants.answer(f"which city has more people , {a.name} or {b.name}?")
        assert result is not None and result.kind == "comparison"
        assert result.value == winner.name


class TestCountAndListing:
    def test_count_cities_in_country(self, suite, variants):
        country = suite.world.of_type("country")[0]
        expected = sum(
            1 for c in suite.world.of_type("city")
            if c.get_fact("located_country") == (country.node,)
        )
        result = variants.answer(f"how many cities are there in {country.name}?")
        assert result is not None and result.kind == "count"
        assert result.value == str(expected)

    def test_listing_sorted_by_population(self, suite, variants):
        country = next(
            c for c in suite.world.of_type("country")
            if sum(
                1 for city in suite.world.of_type("city")
                if city.get_fact("located_country") == (c.node,)
            ) >= 2
        )
        result = variants.answer(f"list all cities in {country.name} ordered by population")
        assert result is not None and result.kind == "listing"
        member_cities = [
            city for city in suite.world.of_type("city")
            if city.get_fact("located_country") == (country.node,)
        ]
        assert set(result.values) == {c.name for c in member_cities}
        populations = [
            int(next(c for c in member_cities if c.name == name).get_fact("population")[0])
            for name in result.values
        ]
        assert populations == sorted(populations, reverse=True)


class TestBoolean:
    def test_married_yes(self, suite, variants):
        person = next(p for p in suite.world.of_type("person") if p.get_fact("spouse"))
        spouse_name = suite.world.name_of(person.get_fact("spouse")[0])
        result = variants.answer(f"is {person.name} married to {spouse_name}?")
        assert result is not None and result.value == "yes"

    def test_married_no(self, suite, variants):
        married = [p for p in suite.world.of_type("person") if p.get_fact("spouse")]
        person = married[0]
        non_spouse = next(
            p for p in married if p.node not in (person.node, person.get_fact("spouse")[0])
        )
        result = variants.answer(f"is {person.name} married to {non_spouse.name}?")
        assert result is not None and result.value == "no"


class TestExtendedKBQA:
    def test_falls_back_to_bfq(self, suite, extended, kbqa_fb):
        city = next(e for e in suite.world.of_type("city") if e.get_fact("population"))
        question = f"what is the population of {city.name}?"
        assert extended.answer(question).value == kbqa_fb.answer(question).value

    def test_variant_marked_in_template(self, extended):
        result = extended.answer("which city has the largest population?")
        assert result.answered
        assert result.template == "variant:superlative"

    def test_improves_nonbfq_recall(self, suite, kbqa_fb, extended):
        """The extension's reason to exist: non-BFQ strata become answerable."""
        from repro.eval.runner import evaluate_qald

        bench = suite.benchmark("qald3")
        base, _ = evaluate_qald(kbqa_fb, bench, suite.freebase)
        ext, _ = evaluate_qald(extended, bench, suite.freebase)
        assert ext.right > base.right
        assert ext.recall > base.recall + 0.1
        assert ext.precision >= 0.8  # the probes keep precision high

    def test_descriptions_still_refused(self, extended):
        result = extended.answer("why is mapleton worth visiting?")
        assert not result.answered


class TestHelpers:
    @pytest.mark.parametrize("plural,singular", [
        ("cities", "city"), ("countries", "country"), ("mountains", "mountain"),
        ("glass", "glass"), ("city", "city"),
    ])
    def test_singular(self, plural, singular):
        assert _singular(plural) == singular

    def test_as_number(self):
        assert _as_number("42") == 42.0
        assert _as_number("oakville") is None


class TestOrdinalRanking:
    """The paper's Sec 1 ranking example: 'the 3rd largest population'."""

    def _ranked(self, world, etype, intent):
        candidates = [e for e in world.of_type(etype) if e.get_fact(intent)]
        return sorted(candidates, key=lambda e: -int(e.get_fact(intent)[0]))

    def test_third_largest_population(self, suite, variants):
        ranked = self._ranked(suite.world, "city", "population")
        result = variants.answer("which city has the 3rd largest population?")
        assert result is not None
        assert result.value == ranked[2].name

    def test_second_largest(self, suite, variants):
        ranked = self._ranked(suite.world, "city", "population")
        result = variants.answer("which city has the 2nd largest population?")
        assert result is not None
        assert result.value == ranked[1].name

    def test_rank_beyond_instances_refused(self, variants):
        assert variants.answer("which city has the 999th largest population?") is None

    def test_plain_superlative_still_rank_one(self, suite, variants):
        ranked = self._ranked(suite.world, "city", "population")
        result = variants.answer("which city has the largest population?")
        assert result is not None and result.value == ranked[0].name
