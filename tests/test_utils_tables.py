"""Tests for the table renderer and the stopwatch."""

import time

import pytest

from repro.utils.tables import Table
from repro.utils.timing import Stopwatch


class TestTable:
    def test_renders_header_and_rows(self):
        table = Table(["system", "P"], title="demo")
        table.add_row(["KBQA", 0.85])
        text = table.render()
        assert "demo" in text
        assert "system" in text
        assert "KBQA" in text
        assert "0.85" in text

    def test_column_alignment(self):
        table = Table(["a", "b"])
        table.add_row(["xxxxxxx", 1])
        lines = table.render().splitlines()
        # header and row should be padded to the same width
        assert len(lines[0]) == len(lines[2])

    def test_wrong_cell_count_raises(self):
        table = Table(["a", "b"])
        with pytest.raises(ValueError):
            table.add_row([1])

    def test_empty_columns_raise(self):
        with pytest.raises(ValueError):
            Table([])

    def test_none_renders_as_dash(self):
        table = Table(["a"])
        table.add_row([None])
        assert "-" in table.render().splitlines()[-1]

    def test_integer_valued_floats(self):
        table = Table(["a"])
        table.add_row([2.0])
        assert "2.0" in table.render()


class TestStopwatch:
    def test_accumulates(self):
        sw = Stopwatch()
        with sw:
            time.sleep(0.01)
        with sw:
            time.sleep(0.01)
        assert sw.calls == 2
        assert sw.elapsed >= 0.02

    def test_mean_ms(self):
        sw = Stopwatch()
        with sw:
            pass
        assert sw.mean_ms >= 0.0

    def test_mean_ms_zero_calls(self):
        assert Stopwatch().mean_ms == 0.0

    def test_double_start_raises(self):
        sw = Stopwatch()
        sw.start()
        with pytest.raises(RuntimeError):
            sw.start()

    def test_stop_without_start_raises(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()
