"""Timing regression tests for the ID-native hot paths.

Marked ``perf`` so tier-1 (``pytest -x -q``) skips them — wall-clock asserts
are machine-sensitive.  Run explicitly with ``pytest -m perf`` or via
``scripts/bench.sh``; the authoritative before/after numbers live in
``BENCH_perf.json`` (see ``benchmarks/perf_harness.py``).
"""

import time

import pytest

from repro.core.em import EMConfig, run_em, run_em_reference
from repro.core.learner import LearnerConfig, OfflineLearner
from repro.kb.expansion import expand_predicates, expand_predicates_baseline

pytestmark = pytest.mark.perf


def _best_of(fn, repeats=3):
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_id_native_expansion_faster_than_baseline(suite):
    store = suite.freebase.store
    seeds = [e.node for e in suite.world.of_type("person")]
    fast = _best_of(lambda: expand_predicates(store, seeds, max_length=3))
    slow = _best_of(lambda: expand_predicates_baseline(store, seeds, max_length=3))
    assert fast < slow, f"id-native expansion ({fast:.4f}s) vs baseline ({slow:.4f}s)"


def test_array_em_faster_than_reference(suite):
    learner = OfflineLearner(suite.freebase, suite.conceptualizer, LearnerConfig())
    encoded, _t, _p = learner.encode_corpus(suite.corpus).encoded
    config = EMConfig(max_iterations=25, tolerance=0.0)
    fast = _best_of(lambda: run_em(encoded, config))
    slow = _best_of(lambda: run_em_reference(encoded, config))
    assert fast < slow, f"array EM ({fast:.4f}s) vs reference ({slow:.4f}s)"


def test_warm_answer_cache_faster_than_cold(suite, kbqa_fb):
    questions = [q.question for q in suite.benchmark("qald3").bfqs()]
    kbqa_fb.answerer.clear_caches()
    start = time.perf_counter()
    cold = kbqa_fb.answer_many(questions)
    cold_s = time.perf_counter() - start
    start = time.perf_counter()
    warm = kbqa_fb.answer_many(questions)
    warm_s = time.perf_counter() - start
    assert warm == cold
    assert warm_s < cold_s, f"warm batch ({warm_s:.4f}s) vs cold ({cold_s:.4f}s)"
