"""Documentation quality gates.

Every public module, class and function of the library must carry a
docstring — deliverable (e) requires doc comments on every public item —
and the repository's documents must reference artifacts that exist.
"""

import importlib
import inspect
import pkgutil
from pathlib import Path

import pytest

import repro

REPO_ROOT = Path(__file__).resolve().parent.parent


def _public_modules():
    modules = [repro]
    for info in pkgutil.walk_packages(repro.__path__, prefix="repro."):
        if any(part.startswith("_") for part in info.name.split(".")):
            continue
        modules.append(importlib.import_module(info.name))
    return modules


@pytest.mark.parametrize("module", _public_modules(), ids=lambda m: m.__name__)
def test_module_has_docstring(module):
    assert module.__doc__ and module.__doc__.strip(), module.__name__


@pytest.mark.parametrize("module", _public_modules(), ids=lambda m: m.__name__)
def test_public_items_have_docstrings(module):
    undocumented = []
    for name, item in vars(module).items():
        if name.startswith("_"):
            continue
        if not (inspect.isclass(item) or inspect.isfunction(item)):
            continue
        if getattr(item, "__module__", None) != module.__name__:
            continue  # re-exported from elsewhere; documented at the source
        if not (item.__doc__ and item.__doc__.strip()):
            undocumented.append(name)
        if inspect.isclass(item):
            for method_name, method in vars(item).items():
                if method_name.startswith("_") or not inspect.isfunction(method):
                    continue
                if not (method.__doc__ and method.__doc__.strip()):
                    # property-like one-liners get a pass only if trivially
                    # named accessors; anything else needs documentation
                    if len(inspect.getsource(method).splitlines()) > 4:
                        undocumented.append(f"{name}.{method_name}")
    assert not undocumented, f"{module.__name__}: {undocumented}"


class TestRepositoryDocuments:
    @pytest.mark.parametrize("filename", [
        "README.md", "DESIGN.md", "EXPERIMENTS.md", "pyproject.toml",
    ])
    def test_document_exists(self, filename):
        assert (REPO_ROOT / filename).is_file(), filename

    def test_design_references_existing_benchmarks(self):
        text = (REPO_ROOT / "DESIGN.md").read_text()
        for line in text.splitlines():
            if "benchmarks/bench_" not in line:
                continue
            for token in line.split("`"):
                if token.startswith("benchmarks/bench_") and token.endswith(".py"):
                    assert (REPO_ROOT / token).is_file(), token

    def test_readme_references_existing_examples(self):
        text = (REPO_ROOT / "README.md").read_text()
        for line in text.splitlines():
            if line.strip().startswith("python examples/"):
                script = line.strip().split()[1]
                assert (REPO_ROOT / script).is_file(), script

    def test_every_paper_table_has_a_benchmark(self):
        bench_dir = REPO_ROOT / "benchmarks"
        for table in range(4, 19):
            matches = list(bench_dir.glob(f"bench_table{table:02d}_*.py"))
            assert matches, f"no benchmark for Table {table}"

    def test_examples_count_meets_deliverable(self):
        examples = list((REPO_ROOT / "examples").glob("*.py"))
        assert len(examples) >= 3
