"""Tests for text helpers."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.utils.text import (
    join_tokens,
    ngrams,
    normalize_space,
    strip_punctuation,
    token_spans,
)


class TestNormalizeSpace:
    def test_collapses_runs(self):
        assert normalize_space("a   b\t c") == "a b c"

    def test_strips_ends(self):
        assert normalize_space("  hello  ") == "hello"

    def test_empty(self):
        assert normalize_space("   ") == ""


class TestStripPunctuation:
    def test_removes_question_mark(self):
        assert strip_punctuation("what is it?") == "what is it"

    def test_keeps_hyphens_and_digits(self):
        assert strip_punctuation("well-known 42.") == "well-known 42"


class TestNgrams:
    def test_bigrams(self):
        assert list(ngrams(["a", "b", "c"], 2)) == [("a", "b"), ("b", "c")]

    def test_n_equal_length(self):
        assert list(ngrams(["a", "b"], 2)) == [("a", "b")]

    def test_n_longer_than_input(self):
        assert list(ngrams(["a"], 2)) == []

    def test_invalid_n(self):
        with pytest.raises(ValueError):
            list(ngrams(["a"], 0))


class TestTokenSpans:
    def test_all_spans_of_three_tokens(self):
        spans = list(token_spans(["a", "b", "c"]))
        assert len(spans) == 6  # 3 + 2 + 1

    def test_shortest_first(self):
        spans = list(token_spans(["a", "b", "c"]))
        lengths = [end - start for start, end in spans]
        assert lengths == sorted(lengths)

    def test_max_len_limits(self):
        spans = list(token_spans(["a", "b", "c"], max_len=1))
        assert spans == [(0, 1), (1, 2), (2, 3)]

    @given(st.integers(min_value=0, max_value=8))
    def test_span_count_formula(self, n):
        tokens = ["t"] * n
        assert len(list(token_spans(tokens))) == n * (n + 1) // 2


class TestJoinTokens:
    def test_roundtrip_with_split(self):
        assert join_tokens("a b c".split()) == "a b c"
