"""The SQLite-backed disk store (`repro.kb.disk`).

Acceptance bar, mirroring the sharded-backend suite: a
:class:`DiskTripleStore` built by the same add sequence as a
:class:`TripleStore` must assign identical dictionary ids, answer every
protocol read identically (randomized-KB checked), fire identical change
notifications, and carry a whole KBQA system to byte-identical
``answer_many`` output.  On top of that come the disk-only properties:
reopening a compiled file restores the store without a rebuild, pickling
ships a path reference that thaws read-only against the same file, and
``notify_external`` keeps a replica's caches coherent with a sibling
process's writes.
"""

import os
import pickle
import random

import pytest

from repro.core.system import KBQA
from repro.kb.backend import (
    ADD,
    BACKEND_KINDS,
    DELETE,
    KBChange,
    resolve_backend,
)
from repro.kb.disk import DiskTripleStore
from repro.kb.expansion import expand_predicates
from repro.kb.sharded import ShardedTripleStore
from repro.kb.store import TripleStore
from repro.kb.triple import make_literal
from repro.suite import build_suite


def _random_ops(seed: int, n_adds: int = 300, n_deletes: int = 50):
    rng = random.Random(seed)
    entities = [f"e{i}" for i in range(30)]
    values = entities + [make_literal(f"v{i}") for i in range(12)]
    predicates = [f"p{i}" for i in range(6)]
    adds = [
        (rng.choice(entities), rng.choice(predicates), rng.choice(values))
        for _ in range(n_adds)
    ]
    deletes = rng.sample(adds, n_deletes) + [("ghost", "p0", "e0")]
    return adds, deletes


class TestRandomizedEquivalence:
    @pytest.fixture(params=[3, 17, 99], ids=lambda s: f"seed{s}")
    def pair(self, request):
        mem, disk = TripleStore(), DiskTripleStore()
        adds, deletes = _random_ops(request.param)
        for s, p, o in adds:
            assert mem.add(s, p, o) == disk.add(s, p, o)
        for s, p, o in deletes:
            assert mem.delete(s, p, o) == disk.delete(s, p, o)
        yield mem, disk
        disk.close()

    def test_identical_dictionary_ids(self, pair):
        mem, disk = pair
        assert list(mem.dictionary.terms()) == list(disk.dictionary.terms())
        assert len(mem.dictionary) == len(disk.dictionary)

    def test_identical_string_reads(self, pair):
        mem, disk = pair
        assert len(mem) == len(disk)
        assert set(mem.triples()) == set(disk.triples())
        assert set(mem.subjects_iter()) == set(disk.subjects_iter())
        assert mem.predicates() == disk.predicates()
        assert mem.stats() == disk.stats()
        for s in set(mem.subjects_iter()) | {"ghost"}:
            assert mem.predicates_of(s) == disk.predicates_of(s)
            assert mem.out_degree(s) == disk.out_degree(s)
            assert mem.has_subject(s) == disk.has_subject(s)
            for p in mem.predicates() | {"nope"}:
                assert mem.objects(s, p) == disk.objects(s, p)

    def test_identical_id_reads(self, pair):
        mem, disk = pair
        assert set(mem.triples_ids()) == set(disk.triples_ids())
        grouped_mem = {
            s: {p: set(o) for p, o in g.items()} for s, g in mem.spo_items_ids()
        }
        grouped_disk = dict(disk.spo_items_ids())
        assert grouped_mem == grouped_disk
        assert disk.n_shards == 1
        assert dict(disk.shard_spo_items_ids(0)) == grouped_disk
        assert disk.shard_table(0) == grouped_disk
        with pytest.raises(IndexError):
            disk.shard_table(1)
        for s_id, by_predicate in grouped_mem.items():
            assert disk.has_subject_id(s_id)
            assert set(disk.predicates_ids_of(s_id)) == set(by_predicate)
            for p_id, objects in by_predicate.items():
                assert set(disk.objects_ids(s_id, p_id)) == objects

    def test_identical_expansion(self, pair):
        mem, disk = pair
        seeds = sorted(set(s for s, _p, _o in mem.triples()))[:8]
        from_mem = expand_predicates(mem, seeds, max_length=3)
        from_disk = expand_predicates(disk, seeds, max_length=3)
        assert {(s, str(p), o) for s, p, o in from_mem.triples()} == {
            (s, str(p), o) for s, p, o in from_disk.triples()
        }


class TestListenerParity:
    def test_notification_streams_identical(self):
        mem, disk = TripleStore(), DiskTripleStore()
        seen_mem: list[KBChange] = []
        seen_disk: list[KBChange] = []
        mem.subscribe(seen_mem.append)
        disk.subscribe(seen_disk.append)
        adds, deletes = _random_ops(5, n_adds=80, n_deletes=20)
        for s, p, o in adds:
            mem.add(s, p, o), disk.add(s, p, o)
        for s, p, o in deletes:
            mem.delete(s, p, o), disk.delete(s, p, o)
        assert seen_mem == seen_disk and seen_mem
        disk.close()

    def test_batch_coalesces(self):
        disk = DiskTripleStore()
        bursts: list[tuple[KBChange, ...]] = []
        disk.subscribe(lambda c: None, bursts.append)
        with disk.batch():
            disk.add("a", "p", "b")
            disk.add("a", "p", "c")
            assert disk.objects("a", "p") == {"b", "c"}  # reads see writes
            disk.delete("a", "p", "b")
            assert not bursts  # deferred until exit
            assert disk.objects("a", "p") == {"c"}
        assert len(bursts) == 1 and [c.action for c in bursts[0]] == [
            ADD,
            ADD,
            DELETE,
        ]
        disk.close()


class TestPersistence:
    def test_reopen_restores_everything(self, tmp_path):
        path = str(tmp_path / "kb.db")
        first = DiskTripleStore(path)
        adds, _ = _random_ops(7, n_adds=120, n_deletes=0)
        for s, p, o in adds:
            first.add(s, p, o)
        snapshot = (
            len(first),
            set(first.triples()),
            list(first.dictionary.terms()),
            first.stats(),
        )
        first.close()
        reopened = DiskTripleStore(path)
        assert (
            len(reopened),
            set(reopened.triples()),
            list(reopened.dictionary.terms()),
            reopened.stats(),
        ) == snapshot
        reopened.close()

    def test_schema_version_guard(self, tmp_path):
        path = str(tmp_path / "kb.db")
        store = DiskTripleStore(path)
        store.add("a", "p", "b")
        store._connection().execute("PRAGMA user_version = 99")
        store.close()
        with pytest.raises(ValueError, match="schema version"):
            DiskTripleStore(path)

    def test_ephemeral_store_cleans_up_on_close(self):
        store = DiskTripleStore()
        path = store.path
        store.add("a", "p", "b")
        assert os.path.exists(path)
        store.close()
        assert not os.path.exists(path)
        assert not os.path.exists(path + "-wal")

    def test_alias_view(self):
        store = DiskTripleStore()
        store.add("m.1", "name", make_literal("Obama"))
        store.add("m.2", "alias", make_literal("Obama"))
        store.add("m.3", "born", make_literal("Obama"))
        assert store.lookup_alias(make_literal("Obama")) == {"m.1", "m.2"}
        store.close()


class TestConnectionChurn:
    def test_thread_churn_leaves_bounded_connection_count(self):
        """Per-thread connections for dead threads are evicted, not hoarded.

        Serving workloads churn executor threads; without the dead-thread
        sweep every short-lived reader leaks one open SQLite handle into
        ``_connections`` until ``close()``."""
        import threading

        store = DiskTripleStore()
        store.add("a", "p", "b")
        for _ in range(25):
            worker = threading.Thread(target=lambda: store.objects("a", "p"))
            worker.start()
            worker.join()
        # trigger one more registration (and thus a sweep) from a new thread
        final = threading.Thread(target=lambda: store.objects("a", "p"))
        final.start()
        final.join()
        with store._connections_lock:
            store._evict_dead_locked()
            registered = len(store._connections)
        # bounded: at most the main thread's connection survives the sweep
        assert registered <= 1
        # the store still works from the surviving thread
        assert store.objects("a", "p") == {"b"}
        store.close()

    def test_concurrent_threads_keep_their_connections(self):
        """The sweep only touches *dead* threads — live readers are safe."""
        import threading

        store = DiskTripleStore()
        store.add("a", "p", "b")
        barrier = threading.Barrier(5)
        results = []

        def reader():
            store.objects("a", "p")  # register this thread's connection
            barrier.wait()  # hold all threads alive simultaneously
            results.append(store.objects("a", "p"))

        threads = [threading.Thread(target=reader) for _ in range(4)]
        for t in threads:
            t.start()
        barrier.wait()
        for t in threads:
            t.join()
        assert results == [{"b"}] * 4
        store.close()


class TestIngestTriples:
    def test_ingest_matches_sequential_adds(self):
        """The batched ingest seam assigns ids exactly like per-triple adds."""
        from repro.kb.triple import Triple

        adds, _ = _random_ops(21, n_adds=400, n_deletes=0)
        triples = [Triple(s, p, o) for s, p, o in adds]
        sequential, batched = DiskTripleStore(), DiskTripleStore()
        expected_new = sequential.add_all(triples)
        assert batched.ingest_triples(iter(triples), batch_size=64) == expected_new
        assert list(batched.triples_ids()) == list(sequential.triples_ids())
        assert list(batched.dictionary.terms()) == list(sequential.dictionary.terms())
        sequential.close()
        batched.close()

    def test_ingest_with_listeners_keeps_change_stream(self):
        from repro.kb.triple import Triple

        store = DiskTripleStore()
        seen: list[KBChange] = []
        store.subscribe(seen.append)
        triples = [Triple("a", "p", f"o{i}") for i in range(5)] + [Triple("a", "p", "o0")]
        assert store.ingest_triples(triples) == 5
        assert len(seen) == 5 and all(c.action == ADD for c in seen)
        store.close()

    def test_ingest_rejected_read_only(self, tmp_path):
        from repro.kb.triple import Triple

        path = str(tmp_path / "kb.db")
        writer = DiskTripleStore(path)
        writer.add("a", "p", "b")
        replica = pickle.loads(pickle.dumps(writer))
        with pytest.raises(ValueError, match="read-only"):
            replica.ingest_triples([Triple("x", "y", "z")])
        replica.close()
        writer.close()


class TestPickleAsPathReference:
    def test_thaws_read_only_against_the_same_file(self, tmp_path):
        path = str(tmp_path / "kb.db")
        store = DiskTripleStore(path)
        adds, _ = _random_ops(9, n_adds=200, n_deletes=0)
        for s, p, o in adds:
            store.add(s, p, o)
        blob = pickle.dumps(store)
        # a path reference, not a heap image: far smaller than the data
        assert len(blob) < 1024 < os.path.getsize(path)
        thawed = pickle.loads(blob)
        assert thawed.read_only and thawed.path == path
        assert set(thawed.triples()) == set(store.triples())
        # the dictionary facade keeps identity with its store through pickle
        assert thawed.dictionary._store is thawed
        with pytest.raises(ValueError, match="read-only"):
            thawed.add("x", "y", "z")
        with pytest.raises(ValueError, match="read-only"):
            thawed.delete(*adds[0])
        thawed.close()
        store.close()
        assert os.path.exists(path)  # the thawed copy never owns the file

    def test_notify_external_restores_memo_coherence(self, tmp_path):
        """A sibling's write is visible to uncached reads immediately and to
        the memoized (s, p) object sets after the op-log replay calls
        ``notify_external`` — the documented coherence contract."""
        path = str(tmp_path / "kb.db")
        writer = DiskTripleStore(path)
        writer.add("a", "p", "b")
        replica = pickle.loads(pickle.dumps(writer))
        seen: list[KBChange] = []
        replica.subscribe(seen.append)
        assert replica.objects("a", "p") == {"b"}  # memo primed
        writer.add("a", "p", "c")
        assert replica.has("a", "p", "c")  # point read: no cache
        assert replica.objects("a", "p") == {"b"}  # memo: stale by design
        replica.notify_external("add", "a", "p", "c")
        assert replica.objects("a", "p") == {"b", "c"}
        assert [c.action for c in seen] == [ADD]
        assert replica.decode_id(seen[0].object_id) == "c"
        with pytest.raises(ValueError, match="unknown change action"):
            replica.notify_external("upsert", "a", "p", "c")
        replica.close()
        writer.close()


class TestResolveBackend:
    def test_defaults_and_explicit_kinds(self, monkeypatch):
        monkeypatch.delenv("KBQA_BACKEND", raising=False)
        assert type(resolve_backend()) is TripleStore
        assert type(resolve_backend(shards=4)) is ShardedTripleStore
        disk = resolve_backend("disk")
        assert type(disk) is DiskTripleStore
        disk.close()
        assert set(BACKEND_KINDS) == {"memory", "sharded", "disk"}

    def test_environment_override(self, monkeypatch):
        monkeypatch.setenv("KBQA_BACKEND", "disk")
        store = resolve_backend()
        assert type(store) is DiskTripleStore
        store.close()
        # explicit argument beats the environment
        assert type(resolve_backend("memory")) is TripleStore
        # the env var is a default, not a mandate: a structural shard
        # request keeps the sharded backend (the CI disk leg still runs
        # the --shards tests)
        assert type(resolve_backend(shards=2)) is ShardedTripleStore

    def test_invalid_combinations_rejected(self):
        with pytest.raises(ValueError, match="unknown KB backend"):
            resolve_backend("paper")
        with pytest.raises(ValueError, match="does not take a database path"):
            resolve_backend("memory", path="/tmp/x.db")
        with pytest.raises(ValueError, match="single-shard"):
            resolve_backend("disk", shards=3)


class TestSystemEquivalence:
    def test_answer_many_identical_to_memory_backend(self, suite, kbqa_fb):
        """Acceptance: a system trained over the disk-compiled KB answers the
        qald3 BFQ set byte-identically to the in-memory reference."""
        disk_suite = build_suite(scale="small", seed=7, backend="disk")
        assert type(disk_suite.freebase.store) is DiskTripleStore
        assert (
            disk_suite.freebase.store.stats() == suite.freebase.store.stats()
        )
        questions = [q.question for q in suite.benchmark("qald3").bfqs()]
        questions.append("what should i eat tonight?")
        with KBQA.train(
            disk_suite.freebase, disk_suite.corpus, disk_suite.conceptualizer
        ) as disk_system:
            assert disk_system.answer_many(questions) == kbqa_fb.answer_many(
                questions
            )
            # live updates flow through the disk backend's change stream too
            before = disk_system.answer_complex("who is the mayor of mapleton?")
            assert disk_system.add_fact("e.new", "name", make_literal("Newcomer"))
            assert not disk_system.add_fact(
                "e.new", "name", make_literal("Newcomer")
            )
            after = disk_system.answer_complex("who is the mayor of mapleton?")
            assert before.values == after.values

    def test_cli_compile_then_reopen(self, tmp_path, capsys):
        from repro.cli import main

        db_dir = str(tmp_path / "db")
        assert main(["compile", "--scale", "small", "--db-dir", db_dir]) == 0
        out = capsys.readouterr().out
        assert "freebase.db" in out and "dbpedia.db" in out
        assert os.path.exists(os.path.join(db_dir, "freebase.db"))
        code = main(
            ["answer", "--scale", "small", "--backend", "disk",
             "--db-dir", db_dir, "what is the population of mapleton?"]
        )
        assert code == 0
        assert "A: " in capsys.readouterr().out

    def test_cli_compile_requires_db_dir(self, capsys):
        from repro.cli import main

        assert main(["compile", "--scale", "small"]) == 1
        assert "--db-dir is required" in capsys.readouterr().err
