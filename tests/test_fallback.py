"""Tests for the semantic fallback lane (embed + FallbackIndex + wiring).

The lane's contract, in test form:

* exact-template answers are byte-identical with the lane on or off (the
  lane runs only behind abstention),
* held-out paraphrases of learned questions are recovered and tagged
  ``fallback=True``,
* the confidence gate turns low-confidence matches back into abstentions
  (and a question with no KB mention can never reach the lane),
* the index survives snapshot pickling into process workers,
* degraded mode (``cached_answer``) never invokes the lane,
* the pruned cosine scan equals the naive full scan,
* the serving layer counts ``fallback_served``/``fallback_abstained``.
"""

from __future__ import annotations

import asyncio
import pickle

import pytest

from repro.core.fallback import FallbackConfig, FallbackIndex
from repro.core.online import OnlineAnswerer
from repro.exec.snapshot import AnswerBatchTask, evaluate_frozen_batch, freeze_target
from repro.nlp.embed import dot, embed_tokens
from repro.nlp.tokenizer import tokenize
from repro.serve.async_answerer import AsyncAnswerer, ServeConfig


def _clone_answerer(kbqa, *, fallback=None, answer_cache_size=256) -> OnlineAnswerer:
    """A fresh answerer over a trained system's components."""
    base = kbqa.answerer
    return OnlineAnswerer(
        base.kbview,
        base.ner,
        base.conceptualizer,
        base.model,
        max_concepts=base.max_concepts,
        answer_cache_size=answer_cache_size,
        lookup_cache_size=0,
        fallback=fallback,
    )


@pytest.fixture(scope="module")
def fb_index(kbqa_fb) -> FallbackIndex:
    return FallbackIndex.build(kbqa_fb.model)


@pytest.fixture(scope="module")
def fb_answerer(kbqa_fb, fb_index) -> OnlineAnswerer:
    return _clone_answerer(kbqa_fb, fallback=fb_index)


@pytest.fixture(scope="module")
def training_questions(suite, kbqa_fb) -> list[str]:
    picked = [q for q in suite.corpus.questions() if kbqa_fb.answer(q).answered]
    assert len(picked) >= 4
    return picked[:12]


HELDOUT_REWRITES = (
    lambda q: "regarding " + q.rstrip("?").strip() + ", any thoughts?",
    lambda q: q.rstrip("?") + " or not?",
    lambda q: "quick trivia: " + q,
)


class TestEmbed:
    def test_deterministic_and_normalized(self):
        tokens = tuple(tokenize("when was barack obama born?"))
        a = embed_tokens(tokens)
        b = embed_tokens(tokens)
        assert a == b
        assert dot(a, a) == pytest.approx(1.0, abs=1e-5)

    def test_seed_changes_vectors(self):
        tokens = ("population", "of", "berlin")
        assert embed_tokens(tokens, seed=0) != embed_tokens(tokens, seed=1)

    def test_similar_texts_closer_than_unrelated(self):
        base = embed_tokens(tuple(tokenize("where was $person born?")))
        near = embed_tokens(tuple(tokenize("tell me where $person was born")))
        far = embed_tokens(tuple(tokenize("stock price of the company today")))
        assert dot(base, near) > dot(base, far)

    def test_empty_tokens_embed_to_zero(self):
        vec = embed_tokens(())
        assert dot(vec, vec) == 0.0


class TestFallbackIndex:
    def test_build_covers_model_paths(self, kbqa_fb, fb_index):
        assert len(fb_index) == len(kbqa_fb.model.distinct_paths())
        assert fb_index.path_strs == sorted(fb_index.path_strs)

    def test_build_deterministic(self, kbqa_fb, fb_index):
        again = FallbackIndex.build(kbqa_fb.model)
        assert again.path_strs == fb_index.path_strs
        assert again.matrix == fb_index.matrix

    def test_pruned_scan_equals_naive(self, fb_index, training_questions):
        for question in training_questions:
            qvec = embed_tokens(tuple(tokenize(question)))
            for k in (1, 3, 10, len(fb_index)):
                pruned = fb_index.top_paths(qvec, k, prune=True)
                naive = fb_index.top_paths(qvec, k, prune=False)
                assert pruned == naive

    def test_top_paths_ranked_descending(self, fb_index):
        qvec = embed_tokens(("where", "born"))
        ranked = fb_index.top_paths(qvec, 5)
        scores = [score for _path, score in ranked]
        assert scores == sorted(scores, reverse=True)

    def test_gate_abstains_below_threshold(self, kbqa_fb):
        strict = FallbackIndex.build(
            kbqa_fb.model, FallbackConfig(threshold=0.999999)
        )
        qvec = embed_tokens(("where", "was", "someone", "born"))
        assert strict.gated_paths(qvec) == []

    def test_pickle_roundtrip(self, fb_index):
        thawed = pickle.loads(pickle.dumps(fb_index))
        assert thawed.path_strs == fb_index.path_strs
        assert thawed.matrix == fb_index.matrix
        qvec = embed_tokens(("where", "born"))
        assert thawed.top_paths(qvec) == fb_index.top_paths(qvec)


class TestFallbackLane:
    def test_exact_templates_byte_identical(self, kbqa_fb, fb_index, training_questions):
        """The acceptance criterion: answered results identical lane on/off."""
        plain = _clone_answerer(kbqa_fb, fallback=None)
        laned = _clone_answerer(kbqa_fb, fallback=fb_index)
        for a, b in zip(
            plain.answer_many(training_questions),
            laned.answer_many(training_questions),
        ):
            assert a == b  # frozen dataclass: full field-wise equality
            assert not b.fallback

    def test_heldout_paraphrase_recovered(self, kbqa_fb, fb_answerer, training_questions):
        recovered = 0
        for i, question in enumerate(training_questions):
            reference = kbqa_fb.answer(question)
            heldout = HELDOUT_REWRITES[i % len(HELDOUT_REWRITES)](question)
            assert not _clone_answerer(kbqa_fb).answer(heldout).answered, (
                "held-out rewrite unexpectedly matches a learned template"
            )
            result = fb_answerer.answer(heldout)
            if result.answered:
                assert result.fallback
                assert result.found_predicate
                assert result.value == reference.value
                recovered += 1
        assert recovered > 0, "fallback lane recovered nothing"

    def test_no_mention_never_reaches_lane(self, fb_answerer):
        for chitchat in ("hello there, how are you?", "nice weather or not?"):
            result = fb_answerer.answer(chitchat)
            assert not result.answered
            assert not result.fallback

    def test_gate_threshold_respected_end_to_end(self, kbqa_fb, training_questions):
        strict_index = FallbackIndex.build(
            kbqa_fb.model, FallbackConfig(threshold=0.999999)
        )
        strict = _clone_answerer(kbqa_fb, fallback=strict_index)
        heldout = HELDOUT_REWRITES[0](training_questions[0])
        result = strict.answer(heldout)
        assert not result.answered
        assert not result.fallback

    def test_survives_snapshot_into_worker_path(self, fb_answerer, training_questions):
        """freeze_target -> evaluate_frozen_batch is exactly what a process
        worker runs; the thawed answerer must still recover paraphrases."""
        heldout = HELDOUT_REWRITES[0](training_questions[0])
        expected = fb_answerer.answer(heldout)
        blob = freeze_target(fb_answerer)
        task = AnswerBatchTask(epoch=99, questions=(heldout,), blob=blob)
        [result] = evaluate_frozen_batch(task)
        assert result == expected
        if expected.answered:
            assert result.fallback

    def test_thawed_answerer_keeps_index(self, fb_answerer):
        thawed = pickle.loads(pickle.dumps(fb_answerer))
        assert thawed.fallback_enabled
        assert thawed.fallback_index.path_strs == fb_answerer.fallback_index.path_strs

    def test_degraded_mode_never_invokes_lane(self, kbqa_fb, fb_index, training_questions):
        """cached_answer is a pure cache probe: an uncached held-out
        question returns None even though the lane could answer it."""
        answerer = _clone_answerer(kbqa_fb, fallback=fb_index, answer_cache_size=64)
        heldout = HELDOUT_REWRITES[0](training_questions[0])
        assert answerer.cached_answer(heldout) is None  # no evaluation
        live = answerer.answer(heldout)
        cached = answerer.cached_answer(heldout)
        if live.answered:
            # once served, the cached copy carries the fallback tag through
            assert cached is not None and cached.fallback

    def test_clear_caches_keeps_index(self, kbqa_fb, fb_index):
        answerer = _clone_answerer(kbqa_fb, fallback=fb_index)
        answerer.clear_caches()
        assert answerer.fallback_enabled
        answerer.clear_caches(model_changed=True)
        assert answerer.fallback_enabled  # only replace_model swaps it


class TestServingCounters:
    def test_fallback_served_and_abstained_counted(
        self, kbqa_fb, fb_answerer, training_questions
    ):
        heldout = HELDOUT_REWRITES[0](training_questions[0])
        recovered = fb_answerer.answer(heldout)
        assert recovered.answered and recovered.fallback

        async def drive() -> dict:
            config = ServeConfig(executor="serial", workers=1)
            async with AsyncAnswerer(fb_answerer, config) as answerer:
                await answerer.answer(heldout)
                await answerer.answer("hello there, how are you?")
                await answerer.answer(training_questions[0])
                return answerer.snapshot()

        stats = asyncio.run(drive())
        assert stats["fallback_served"] == 1
        assert stats["fallback_abstained"] == 1

    def test_lane_off_counters_stay_zero(self, kbqa_fb, training_questions):
        plain = _clone_answerer(kbqa_fb)

        async def drive() -> dict:
            config = ServeConfig(executor="serial", workers=1)
            async with AsyncAnswerer(plain, config) as answerer:
                await answerer.answer(training_questions[0])
                await answerer.answer("hello there, how are you?")
                return answerer.snapshot()

        stats = asyncio.run(drive())
        assert stats["fallback_served"] == 0
        assert stats["fallback_abstained"] == 0
