"""HTTP front smoke: routes, live /facts updates, concurrency, shutdown.

Runs a real :class:`KBQAServer` on an ephemeral port (via
:class:`BackgroundServer`) over a **private** trained system — /facts
mutates the KB, so the session-scoped fixtures stay untouched.  Clients are
plain ``http.client``/``urllib`` calls from the test thread (and a thread
pool for the concurrency case), exactly what CI's smoke step exercises.
"""

import http.client
import json
import multiprocessing
import socket
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.core.system import KBQA
from repro.data.compile import compile_freebase_like
from repro.kb.triple import make_literal
from repro.serve import (
    BackgroundServer,
    MultiProcessServer,
    OverloadedError,
    ServeConfig,
    multiproc_available,
    run_smoke,
)
from repro.serve.app import KBQAServer
from repro.serve.http import HTTPRequest


@pytest.fixture(scope="module")
def serve_system(suite) -> KBQA:
    """A trained system over a private KB copy (safe to mutate via /facts)."""
    kb = compile_freebase_like(suite.world)
    return KBQA.train(kb, suite.corpus, suite.conceptualizer)


@pytest.fixture(scope="module")
def server(serve_system):
    config = ServeConfig(workers=2, max_batch=8)
    with BackgroundServer(serve_system, config) as background:
        yield background


def _post(url: str, payload: dict) -> tuple[int, dict]:
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _get(url: str) -> tuple[int, dict]:
    try:
        with urllib.request.urlopen(url, timeout=30) as response:
            return response.status, json.loads(response.read().decode("utf-8"))
    except urllib.error.HTTPError as error:
        return error.code, json.loads(error.read().decode("utf-8"))


def _answerable_question(suite, system) -> str:
    for entity in suite.world.of_type("city"):
        question = f"what is the population of {entity.name}?"
        if system.answer(question).answered:
            return question
    raise AssertionError("no answerable city question in the suite")


class TestRoutes:
    def test_healthz(self, server):
        status, payload = _get(server.url + "/healthz")
        assert status == 200
        assert payload["status"] == "ok"
        assert payload["uptime_s"] >= 0

    def test_answer_matches_synchronous_path(self, server, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        expected = serve_system.answer(question)
        status, payload = _post(server.url + "/answer", {"question": question})
        assert status == 200
        assert payload["answered"] is True
        assert payload["value"] == expected.value
        assert payload["values"] == list(expected.values)
        assert payload["question"] == question

    def test_unknown_entity_is_200_with_no_answer(self, server):
        status, payload = _post(
            server.url + "/answer",
            {"question": "who is the spouse of zorblax the unknowable?"},
        )
        assert status == 200
        assert payload["answered"] is False
        assert payload["value"] is None

    def test_batch_preserves_order_with_duplicates(self, server, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        questions = [question, "gibberish about nothing?", question]
        status, payload = _post(server.url + "/batch", {"questions": questions})
        assert status == 200
        results = payload["results"]
        assert [r["question"] for r in results] == questions
        assert results[0]["value"] == results[2]["value"]
        assert results[1]["answered"] is False

    def test_stats_shape(self, server):
        status, payload = _get(server.url + "/stats")
        assert status == 200
        assert {"serve", "caches", "kb"} <= payload.keys()
        assert payload["serve"]["running"] is True
        assert payload["kb"]["triples"] > 0

    def test_error_paths_are_deterministic(self, server):
        status, payload = _post(server.url + "/answer", {"nope": 1})
        assert (status, "question" in payload["error"]) == (400, True)
        status, _ = _post(server.url + "/batch", {"questions": []})
        assert status == 400
        status, payload = _get(server.url + "/nowhere")
        assert status == 404
        status, payload = _get(server.url + "/answer")  # GET on a POST route
        assert status == 405

    def test_malformed_json_is_400(self, server):
        connection = http.client.HTTPConnection(
            server.server.host, server.server.port, timeout=30
        )
        connection.request(
            "POST", "/answer", body=b"{not json",
            headers={"Content-Type": "application/json", "Content-Length": "9"},
        )
        response = connection.getresponse()
        assert response.status == 400
        connection.close()

    def test_keep_alive_serves_multiple_requests_per_connection(self, server):
        connection = http.client.HTTPConnection(
            server.server.host, server.server.port, timeout=30
        )
        for _ in range(3):
            connection.request("GET", "/healthz")
            response = connection.getresponse()
            assert response.status == 200
            response.read()
        connection.close()


class TestConnectionHardening:
    """Hostile and broken clients at the socket level: garbage bytes,
    truncated requests, mid-request hangups.  The server answers 400 where
    a reply is still possible, never leaks a traceback out of a connection
    task, stays healthy for the next client, and counts what it saw."""

    def _raw(self, server, payload: bytes, *, shutdown: bool = False) -> bytes:
        with socket.create_connection(
            (server.server.host, server.server.port), timeout=30
        ) as sock:
            sock.sendall(payload)
            if shutdown:
                sock.shutdown(socket.SHUT_WR)  # half-close: reply still readable
            chunks = []
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    break
                chunks.append(chunk)
            return b"".join(chunks)

    def test_garbage_request_line_gets_400_and_close(self, server):
        data = self._raw(server, b"\x00\xff TOTAL GARBAGE\r\n\r\n")
        assert data.startswith(b"HTTP/1.1 400 ")
        assert b"connection: close" in data.lower()
        assert _get(server.url + "/healthz")[0] == 200

    def test_truncated_body_gets_400_not_a_hang(self, server):
        data = self._raw(
            server,
            b"POST /answer HTTP/1.1\r\nContent-Length: 100\r\n\r\n" b'{"question',
            shutdown=True,
        )
        assert data.startswith(b"HTTP/1.1 400 ")
        assert _get(server.url + "/healthz")[0] == 200

    def test_truncated_headers_get_400_not_a_hang(self, server):
        data = self._raw(server, b"POST /answer HTTP/1.1\r\nContent-", shutdown=True)
        assert data.startswith(b"HTTP/1.1 400 ")
        assert _get(server.url + "/healthz")[0] == 200

    def test_disconnect_mid_request_leaves_server_healthy(self, server):
        sock = socket.create_connection(
            (server.server.host, server.server.port), timeout=30
        )
        sock.sendall(b"POST /answer HTTP/1.1\r\nContent-Length: 50\r\n\r\n")
        sock.close()  # hang up while the server awaits the promised body
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            if _get(server.url + "/healthz")[0] == 200:
                break
            time.sleep(0.05)
        assert _get(server.url + "/healthz")[0] == 200

    def test_stats_expose_http_error_counters(self, server):
        self._raw(server, b"NOT EVEN HTTP\r\n\r\n")
        status, payload = _get(server.url + "/stats")
        assert status == 200
        assert payload["http"]["bad_requests"] >= 1
        assert payload["http"]["disconnects"] >= 0


class TestLiveFacts:
    def test_add_then_delete_fact_flows_into_answers(self, server, serve_system, suite):
        """The /facts write path: quiesced add -> new answer -> quiesced
        delete -> old answer, with no retraining and no restart."""
        entity = next(e for e in suite.world.of_type("city"))
        question = f"what is the population of {entity.name}?"
        before = _post(server.url + "/answer", {"question": question})[1]
        assert before["answered"] is True

        node = before["entity"]
        fact = {"subject": node, "predicate": "population", "object": make_literal("123456")}
        status, payload = _post(server.url + "/facts", {"op": "add", **fact})
        assert (status, payload["changed"]) == (200, True)
        try:
            after = _post(server.url + "/answer", {"question": question})[1]
            assert "123456" in after["values"]
        finally:
            status, payload = _post(server.url + "/facts", {"op": "delete", **fact})
        assert (status, payload["changed"]) == (200, True)
        restored = _post(server.url + "/answer", {"question": question})[1]
        assert restored["values"] == before["values"]

    def test_facts_validation(self, server):
        status, payload = _post(server.url + "/facts", {"op": "upsert"})
        assert status == 400 and "op" in payload["error"]
        status, payload = _post(
            server.url + "/facts", {"op": "add", "subject": "s", "predicate": "p"}
        )
        assert status == 400 and "object" in payload["error"]


class TestConcurrency:
    def test_concurrent_identical_requests_agree(self, server, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        outcomes: list[tuple[int, dict]] = []
        lock = threading.Lock()

        def client():
            result = _post(server.url + "/answer", {"question": question})
            with lock:
                outcomes.append(result)

        workers = [threading.Thread(target=client) for _ in range(12)]
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join(timeout=60)
        assert len(outcomes) == 12
        assert all(status == 200 for status, _ in outcomes)
        bodies = {json.dumps(payload, sort_keys=True) for _, payload in outcomes}
        assert len(bodies) == 1  # identical answers for identical questions

    def test_overload_maps_to_503_with_documented_body(self, serve_system):
        """The route layer's contract for admission rejection, independent
        of timing: a rejecting answerer yields exactly the documented 503."""
        import asyncio

        server = KBQAServer(serve_system, ServeConfig(max_pending=7))

        async def main():
            async def rejecting(_question, **_kwargs):
                raise OverloadedError("serving queue full (7 pending evaluations)")

            server.answerer.answer = rejecting
            request = HTTPRequest(
                method="POST", path="/answer",
                body=json.dumps({"question": "anything?"}).encode(),
            )
            return await server._route(request)

        status, payload = asyncio.run(main())
        assert status == 503
        assert payload == {"error": "overloaded", "max_pending": 7}


needs_multiproc = pytest.mark.skipif(
    not multiproc_available(),
    reason="multi-process serving needs SO_REUSEPORT + fork (POSIX)",
)


@needs_multiproc
class TestMultiProcess:
    """The SO_REUSEPORT front: N forked replicas answer like one process,
    replicate writes, and shut down without leaking a single child."""

    def test_n_process_answers_match_single_process(self, serve_system, suite):
        """Acceptance: identical answer payloads from a 2-process front,
        the 1-process server, and the synchronous path — across enough
        fresh connections for the kernel to spread load over replicas."""
        questions = [q.question for q in suite.benchmark("qald3").bfqs()][:6]
        sync_payloads = []
        with BackgroundServer(serve_system, ServeConfig(workers=2)) as single:
            for question in questions:
                status, payload = _post(single.url + "/answer", {"question": question})
                assert status == 200
                sync_payloads.append(payload)
        with MultiProcessServer(serve_system, ServeConfig(workers=2), procs=2) as front:
            for round_index in range(3):  # fresh connections spread across replicas
                for question, reference in zip(questions, sync_payloads):
                    status, payload = _post(
                        front.url + "/answer", {"question": question}
                    )
                    assert status == 200
                    assert payload == reference, (
                        f"replica answer diverged on {question!r} "
                        f"(round {round_index})"
                    )

    def test_cross_process_invalidation_after_facts_apply(self, serve_system, suite):
        """A /facts write served by one replica must become visible on all
        replicas (shared epoch counter + op-log replay), and the delete
        must restore the original answer everywhere."""
        entity = next(e for e in suite.world.of_type("city"))
        question = f"what is the population of {entity.name}?"
        procs = 3

        def until_streak(url, predicate, what, streak_target=2 * procs):
            deadline = time.monotonic() + 30
            streak = 0
            while streak < streak_target:
                assert time.monotonic() < deadline, f"{what} never converged"
                status, payload = _post(url + "/answer", {"question": question})
                assert status == 200
                streak = streak + 1 if predicate(payload) else 0
                time.sleep(0.01)
            return payload

        with MultiProcessServer(
            serve_system, ServeConfig(workers=2), procs=procs
        ) as front:
            before = _post(front.url + "/answer", {"question": question})[1]
            assert before["answered"] is True
            fact = {
                "subject": before["entity"],
                "predicate": "population",
                "object": make_literal("31337"),
            }
            status, payload = _post(front.url + "/facts", {"op": "add", **fact})
            assert (status, payload["changed"]) == (200, True)
            until_streak(
                front.url, lambda p: "31337" in p["values"], "the added fact"
            )
            status, payload = _post(front.url + "/facts", {"op": "delete", **fact})
            assert (status, payload["changed"]) == (200, True)
            restored = until_streak(
                front.url,
                lambda p: "31337" not in p["values"],
                "the delete",
            )
            assert restored["values"] == before["values"]

    def test_clean_shutdown_leaves_no_children(self, serve_system):
        baseline = {c.pid for c in multiprocessing.active_children()}
        with MultiProcessServer(serve_system, ServeConfig(workers=2), procs=2) as front:
            assert _get(front.url + "/healthz")[0] == 200
            during = multiprocessing.active_children()
            assert len(during) >= 2  # the replicas are real processes
        deadline = time.monotonic() + 10
        while time.monotonic() < deadline:
            leftover = {
                c.pid for c in multiprocessing.active_children()
            } - baseline
            if not leftover:
                break
            time.sleep(0.02)
        assert {c.pid for c in multiprocessing.active_children()} - baseline == set()

    def test_run_smoke_multiproc(self, serve_system, suite):
        """The CI --procs 2 smoke body: concurrent clients against the
        forked front, asserted responses, all replicas exited."""
        questions = [q.question for q in suite.benchmark("qald3").bfqs()][:6]
        summary = run_smoke(
            serve_system, questions, threads=4, requests_per_thread=3, procs=2
        )
        assert summary["clean_shutdown"] is True
        assert summary["procs"] == 2
        assert summary["http_200"] == summary["requests"] == 12

    def test_procs_validation(self, serve_system):
        with pytest.raises(ValueError, match="procs"):
            MultiProcessServer(serve_system, procs=0)


class TestShutdownAndSmoke:
    def test_background_server_shuts_down_cleanly(self, serve_system):
        with BackgroundServer(serve_system) as background:
            assert _get(background.url + "/healthz")[0] == 200
            thread = background._thread
        assert thread is not None and not thread.is_alive()

    def test_run_smoke_end_to_end(self, serve_system, suite):
        """The CI smoke body: concurrent clients, asserted responses,
        clean shutdown — identical to `kbqa serve --smoke`."""
        questions = [q.question for q in suite.benchmark("qald3").bfqs()][:6]
        summary = run_smoke(
            serve_system, questions, threads=4, requests_per_thread=3
        )
        assert summary["clean_shutdown"] is True
        assert summary["http_200"] == summary["requests"] == 12


class TestMetricsEndpoint:
    """The /metrics Prometheus exposition and the tenant header plumbing."""

    def test_metrics_parses_and_reflects_traffic(self, server, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        _post(server.url + "/answer", {"question": question})
        with urllib.request.urlopen(server.url + "/metrics", timeout=30) as response:
            assert response.status == 200
            assert response.headers["Content-Type"].startswith("text/plain")
            text = response.read().decode("utf-8")
        from repro.serve.metrics import parse_prometheus_text

        series = parse_prometheus_text(text)  # raises on malformed output
        assert "kbqa_stage_latency_ms_bucket" in series
        assert "kbqa_serve_events_total" in series
        assert "kbqa_batch_window_ms" in series
        stage_counts = {
            labels["stage"]: value
            for labels, value in series["kbqa_stage_latency_ms_count"]
        }
        assert stage_counts["total"] >= 1  # the request above was measured
        events = {
            labels["event"]: value
            for labels, value in series["kbqa_serve_events_total"]
        }
        assert events["requests"] >= 1

    def test_metrics_rejects_post(self, server):
        status, _payload = _post(server.url + "/metrics", {})
        assert status == 405

    def test_tenant_header_feeds_per_tenant_counters(self, server, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        data = json.dumps({"question": question}).encode("utf-8")
        request = urllib.request.Request(
            server.url + "/answer",
            data=data,
            headers={
                "Content-Type": "application/json",
                "X-KBQA-Client": "tenant-a",
            },
        )
        with urllib.request.urlopen(request, timeout=30) as response:
            assert response.status == 200
        status, stats = _get(server.url + "/stats")
        assert status == 200
        tenant = stats["metrics"]["tenants"]["tenant-a"]
        assert tenant["requests"] >= 1
        assert tenant["completed"] + tenant.get("coalesced", 0) >= 1

    def test_quota_exceeded_maps_to_429(self, serve_system):
        """Route-layer contract: a throttled tenant sees exactly the
        documented 429 — and /healthz, answered before the answerer, can
        never be throttled."""
        import asyncio

        from repro.serve.control import QuotaExceeded

        server = KBQAServer(serve_system, ServeConfig(quota="5:5"))

        async def main():
            async def throttling(_question, **_kwargs):
                raise QuotaExceeded("client hog is over its request quota")

            server.answerer.answer = throttling
            answer = await server._route(
                HTTPRequest(
                    method="POST",
                    path="/answer",
                    body=json.dumps({"question": "anything?"}).encode(),
                )
            )
            health = await server._route(HTTPRequest(method="GET", path="/healthz"))
            return answer, health

        (status, payload), (health_status, _h) = asyncio.run(main())
        assert status == 429
        assert payload["error"] == "quota exceeded"
        assert "hog" in payload["detail"]
        assert health_status == 200

    def test_stats_carries_controller_when_adaptive(self, serve_system):
        config = ServeConfig(workers=2, adaptive=True, slo_ms=200.0)
        with BackgroundServer(serve_system, config) as background:
            status, stats = _get(background.url + "/stats")
            assert status == 200
            controller = stats["controller"]
            assert controller["slo_p99_ms"] == 200.0
            assert "adjustments" in controller
            serve = stats["serve"]
            assert serve["adaptive"] is True
            assert "batch_window_ms" in serve


@needs_multiproc
class TestMultiProcessMetrics:
    def test_scrape_merges_all_replicas(self, serve_system, suite):
        """Any replica serving /metrics must fold in its siblings' dumped
        state: kbqa_replicas_reporting reaches the replica count and the
        merged request counter covers traffic served by *both* processes."""
        from repro.serve.metrics import parse_prometheus_text

        question = _answerable_question(suite, serve_system)
        posts = 8
        with MultiProcessServer(serve_system, procs=2) as front:
            for _ in range(posts):
                status, _payload = _post(front.url + "/answer", {"question": question})
                assert status == 200
            deadline = time.time() + 15.0
            reporting = requests_seen = 0
            while time.time() < deadline:
                with urllib.request.urlopen(front.url + "/metrics", timeout=30) as resp:
                    series = parse_prometheus_text(resp.read().decode("utf-8"))
                reporting = series["kbqa_replicas_reporting"][0][1]
                events = {
                    labels["event"]: value
                    for labels, value in series.get("kbqa_serve_events_total", [])
                }
                requests_seen = events.get("requests", 0)
                if reporting == 2 and requests_seen >= posts:
                    break
                time.sleep(0.05)
        assert reporting == 2
        assert requests_seen >= posts

    def test_stats_reports_replica_merge(self, serve_system, suite):
        question = _answerable_question(suite, serve_system)
        with MultiProcessServer(serve_system, procs=2) as front:
            _post(front.url + "/answer", {"question": question})
            deadline = time.time() + 15.0
            reporting = 0
            while time.time() < deadline:
                status, stats = _get(front.url + "/stats")
                assert status == 200
                reporting = stats["replicas"]["reporting"]
                if reporting == 2:
                    break
                time.sleep(0.05)
        assert reporting == 2


class TestAdaptiveSmoke:
    def test_run_smoke_adaptive_asserts_controller_and_metrics(
        self, serve_system, suite
    ):
        """The CI --adaptive smoke body: /metrics must parse and the
        controller must have moved at least one knob under the self-load."""
        questions = [q.question for q in suite.benchmark("qald3").bfqs()][:6]
        config = ServeConfig(workers=2, adaptive=True, slo_ms=100.0)
        summary = run_smoke(
            serve_system, questions, threads=4, requests_per_thread=3, config=config
        )
        assert summary["clean_shutdown"] is True
        assert summary["metrics_series"] > 0
        assert summary["controller_adjustments"] >= 1
