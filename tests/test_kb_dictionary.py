"""Tests for the term dictionary."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.kb.dictionary import Dictionary


class TestDictionary:
    def test_encode_assigns_dense_ids(self):
        d = Dictionary()
        assert d.encode("a") == 0
        assert d.encode("b") == 1
        assert d.encode("c") == 2

    def test_encode_is_idempotent(self):
        d = Dictionary()
        first = d.encode("x")
        assert d.encode("x") == first
        assert len(d) == 1

    def test_decode_roundtrip(self):
        d = Dictionary()
        term_id = d.encode("barack obama")
        assert d.decode(term_id) == "barack obama"

    def test_decode_unknown_raises(self):
        d = Dictionary()
        with pytest.raises(KeyError):
            d.decode(0)

    def test_decode_negative_raises(self):
        d = Dictionary()
        d.encode("a")
        with pytest.raises(KeyError):
            d.decode(-1)

    def test_lookup_missing_returns_none(self):
        assert Dictionary().lookup("ghost") is None

    def test_contains(self):
        d = Dictionary()
        d.encode("a")
        assert "a" in d
        assert "b" not in d

    def test_terms_in_id_order(self):
        d = Dictionary()
        for term in ["z", "a", "m"]:
            d.encode(term)
        assert list(d.terms()) == ["z", "a", "m"]

    @given(st.lists(st.text(min_size=1), min_size=1, max_size=50))
    def test_roundtrip_property(self, terms):
        d = Dictionary()
        ids = [d.encode(t) for t in terms]
        for term, term_id in zip(terms, ids):
            assert d.decode(term_id) == term
            assert d.lookup(term) == d.encode(term)

    @given(st.lists(st.text(min_size=1), min_size=1, max_size=50))
    def test_size_equals_distinct_terms(self, terms):
        d = Dictionary()
        for t in terms:
            d.encode(t)
        assert len(d) == len(set(terms))
