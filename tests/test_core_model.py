"""Tests for the template model container and persistence."""

import pytest

from repro.core.model import TemplateModel
from repro.kb.paths import PredicatePath


@pytest.fixture
def model() -> TemplateModel:
    m = TemplateModel()
    m.set_distribution(
        "how many people are there in $city ?",
        {"population": 0.9, "area": 0.1},
        support=50.0,
    )
    m.set_distribution(
        "who is the wife of $person ?",
        {"marriage->person->name": 1.0},
        support=30.0,
    )
    m.set_distribution(
        "what is the area of $city ?",
        {"area": 1.0},
        support=10.0,
    )
    m.n_observations = 90
    return m


class TestTemplateModel:
    def test_contains(self, model):
        assert "who is the wife of $person ?" in model
        assert "unknown $x ?" not in model

    def test_predicates_for(self, model):
        dist = model.predicates_for("how many people are there in $city ?")
        assert dist[PredicatePath.single("population")] == pytest.approx(0.9)

    def test_predicates_for_unknown_template(self, model):
        assert model.predicates_for("nope $x") == {}

    def test_best_path(self, model):
        path, prob = model.best_path("how many people are there in $city ?")
        assert path == PredicatePath.single("population")
        assert prob == pytest.approx(0.9)

    def test_best_path_unknown(self, model):
        assert model.best_path("nope $x") is None

    def test_distribution_renormalized(self):
        m = TemplateModel()
        m.set_distribution("t $x", {"a": 2.0, "b": 2.0})
        assert m.predicates_for("t $x")[PredicatePath.single("a")] == pytest.approx(0.5)

    def test_zero_mass_rejected(self):
        m = TemplateModel()
        with pytest.raises(ValueError):
            m.set_distribution("t $x", {"a": 0.0})
        with pytest.raises(ValueError):
            m.set_distribution("t $x", {})

    def test_inventory_counts(self, model):
        assert model.n_templates == 3
        assert model.n_predicates == 3  # population, area, marriage path
        assert model.templates_per_predicate() == pytest.approx(1.0)

    def test_top_templates_by_support(self, model):
        top = model.top_templates(2)
        assert top[0] == "how many people are there in $city ?"
        assert top[1] == "who is the wife of $person ?"

    def test_templates_for_path(self, model):
        spouse = PredicatePath(("marriage", "person", "name"))
        assert model.templates_for_path(spouse) == ["who is the wife of $person ?"]

    def test_stats_by_path_length(self, model):
        stats = model.stats_by_path_length()
        assert stats[1]["templates"] == 2
        assert stats[3]["templates"] == 1
        assert stats[3]["predicates"] == 1

    def test_save_load_roundtrip(self, model, tmp_path):
        path = tmp_path / "model.json"
        model.save(path)
        loaded = TemplateModel.load(path)
        assert loaded.n_templates == model.n_templates
        assert loaded.n_observations == model.n_observations
        assert loaded.support("who is the wife of $person ?") == pytest.approx(30.0)
        original = model.predicates_for("how many people are there in $city ?")
        restored = loaded.predicates_for("how many people are there in $city ?")
        assert {str(k): v for k, v in original.items()} == pytest.approx(
            {str(k): v for k, v in restored.items()}
        )

    def test_load_rejects_bad_version(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"format_version": 99, "templates": {}}')
        with pytest.raises(ValueError, match="format version"):
            TemplateModel.load(path)

    def test_trained_model_roundtrip(self, kbqa_fb, tmp_path):
        """The real trained model must survive persistence."""
        path = tmp_path / "trained.json"
        kbqa_fb.model.save(path)
        loaded = TemplateModel.load(path)
        assert loaded.n_templates == kbqa_fb.model.n_templates
        template = "what is the population of $city ?"
        assert loaded.best_path(template) == kbqa_fb.model.best_path(template)
