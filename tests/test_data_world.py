"""Tests for the synthetic world generator."""

import pytest

from repro.data.world import (
    ENTITY,
    INTENT_CATALOG,
    LITERAL,
    SCHEMA_BY_INTENT,
    WorldConfig,
    WorldEntity,
    build_world,
)


class TestIntentCatalog:
    def test_intents_unique(self):
        intents = [s.intent for s in INTENT_CATALOG]
        assert len(intents) == len(set(intents))

    def test_fb_paths_unique(self):
        paths = ["->".join(s.fb_path) for s in INTENT_CATALOG]
        assert len(paths) == len(set(paths))

    def test_dbp_paths_unique(self):
        paths = ["->".join(s.dbp_path) for s in INTENT_CATALOG]
        assert len(paths) == len(set(paths))

    def test_related_intents_exist(self):
        for schema in INTENT_CATALOG:
            for related in schema.related:
                assert related in SCHEMA_BY_INTENT

    def test_cvt_detection(self):
        assert SCHEMA_BY_INTENT["spouse"].is_cvt
        assert not SCHEMA_BY_INTENT["dob"].is_cvt

    def test_literal_paths_are_single_edge(self):
        for schema in INTENT_CATALOG:
            if schema.value_kind == LITERAL:
                assert len(schema.fb_path) == 1
                assert len(schema.dbp_path) == 1

    def test_entity_paths_end_in_naming_edge(self):
        for schema in INTENT_CATALOG:
            if schema.value_kind == ENTITY:
                assert schema.fb_path[-1] in ("name", "alias")
                assert schema.dbp_path[-1] == "name"

    def test_most_intents_are_complex_in_freebase(self):
        """The paper: over 98% of KBA intents map to complex structures; in
        our Freebase-like KB a clear majority must be multi-edge."""
        complex_count = sum(1 for s in INTENT_CATALOG if len(s.fb_path) > 1)
        assert complex_count / len(INTENT_CATALOG) > 0.45


class TestWorldBuild:
    def test_deterministic(self):
        a = build_world(WorldConfig.small(seed=3))
        b = build_world(WorldConfig.small(seed=3))
        assert a.stats() == b.stats()
        assert list(a.entities) == list(b.entities)
        for node in list(a.entities)[:50]:
            assert a.entity(node).facts == b.entity(node).facts

    def test_seed_changes_world(self):
        a = build_world(WorldConfig.small(seed=3))
        b = build_world(WorldConfig.small(seed=4))
        facts_a = {(n, i, v) for n, i, v in a.iter_facts()}
        facts_b = {(n, i, v) for n, i, v in b.iter_facts()}
        assert facts_a != facts_b

    def test_entity_counts_match_config(self, world):
        config = world.config
        assert len(world.of_type("city")) == config.n_cities
        assert len(world.of_type("person")) == config.n_people
        assert len(world.of_type("country")) == config.n_countries

    def test_facts_reference_known_intents(self, world):
        for node, intent, _value in world.iter_facts():
            assert intent in SCHEMA_BY_INTENT

    def test_entity_facts_point_at_entities(self, world):
        for node, intent, value in world.iter_facts():
            if SCHEMA_BY_INTENT[intent].value_kind == ENTITY:
                assert value in world.entities, (node, intent, value)

    def test_spouse_symmetric(self, world):
        for person in world.of_type("person"):
            spouse = person.get_fact("spouse")
            if spouse:
                assert world.entity(spouse[0]).get_fact("spouse") == (person.node,)

    def test_capitals_exist_and_are_cities(self, world):
        for country in world.of_type("country"):
            capital = country.get_fact("capital")
            assert capital
            assert world.entity(capital[0]).etype == "city"

    def test_every_person_has_dob(self, world):
        assert all(p.get_fact("dob") for p in world.of_type("person"))

    def test_kb_incompleteness_designed_in(self, world):
        """Some persons must lack optional facts (drives recall < 1)."""
        people = world.of_type("person")
        assert any(not p.get_fact("spouse") for p in people)
        assert any(not p.get_fact("height") for p in people)

    def test_ambiguous_names_exist(self, world):
        ambiguous = world.ambiguous_names()
        types_covered = set()
        for _name, nodes in ambiguous.items():
            types_covered |= {world.entity(n).etype for n in nodes}
        assert "company" in types_covered and "food" in types_covered

    def test_gold_values_literal(self, world):
        person = world.of_type("person")[0]
        assert world.gold_values(person.node, "dob") == set(person.get_fact("dob"))

    def test_gold_values_entity_resolves_names(self, world):
        country = world.of_type("country")[0]
        capital_node = country.get_fact("capital")[0]
        assert world.gold_values(country.node, "capital") == {world.name_of(capital_node)}

    def test_musicians_have_instruments(self, world):
        bands = world.of_type("band")
        assert bands
        for band in bands[:5]:
            for member in band.get_fact("members"):
                assert world.entity(member).get_fact("instrument")

    def test_duplicate_node_rejected(self, world):
        with pytest.raises(ValueError):
            world.register(WorldEntity(
                node=next(iter(world.entities)), name="dup", etype="city",
                concepts=(("$city", 1.0),),
            ))

    def test_unknown_intent_rejected(self):
        entity = WorldEntity(node="x", name="x", etype="city", concepts=(("$city", 1.0),))
        with pytest.raises(KeyError):
            entity.set_fact("nonexistent_intent", "v")
