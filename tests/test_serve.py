"""AsyncAnswerer contract: equivalence, coalescing, admission, freshness.

The serving layer's four invariants under test:

* concurrent async results are byte-identical to the sequential path;
* N concurrent identical questions cost one evaluation (coalescing);
* admission control rejects deterministically with ``OverloadedError``;
* an invalidation that lands mid-evaluation forces a re-evaluation, so a
  request admitted after the invalidation never observes a stale answer.

Behavioral tests drive a scripted target (controllable latency and a
mutable "KB" cell) so timing windows are held open explicitly; equivalence
tests run against the real trained system.
"""

import asyncio
import threading
import time

import pytest

from repro.core.online import AnswerResult
from repro.serve import (
    AsyncAnswerer,
    LoadSpec,
    OverloadedError,
    ServeConfig,
    build_request_stream,
    normalized_key,
)


def _result(question: str, value: str) -> AnswerResult:
    return AnswerResult(
        question=question,
        value=value,
        values=(value,),
        score=1.0,
        entity="e",
        template="t",
        predicate=None,
        found_predicate=True,
    )


class ScriptedTarget:
    """``answer_many`` with controllable latency over a mutable value cell."""

    def __init__(self, value: str = "v0", delay: float = 0.0) -> None:
        self.value = value
        self.delay = delay
        self.calls: list[list[str]] = []
        self.started = threading.Event()
        self.active = 0

    def answer_many(self, questions):
        self.calls.append(list(questions))
        self.active += 1
        self.started.set()
        try:
            if self.delay:
                time.sleep(self.delay)
            return [_result(q, self.value) for q in questions]
        finally:
            self.active -= 1


def run(coro):
    return asyncio.run(coro)


class TestEquivalence:
    def test_concurrent_results_identical_to_sequential(self, kbqa_fb, suite):
        """The acceptance gate: async output == synchronous output, under a
        concurrent duplicate-heavy workload."""
        pool = [q.question for q in suite.benchmark("qald3").bfqs()][:12]
        stream = build_request_stream(
            pool, LoadSpec(requests=60, concurrency=8, duplicate_rate=0.6, seed=3)
        )
        expected = [kbqa_fb.answer(q) for q in stream]

        async def main():
            config = ServeConfig(workers=2, max_batch=8)
            async with AsyncAnswerer(kbqa_fb, config) as answerer:
                return await answerer.answer_many(stream)

        assert run(main()) == expected

    def test_question_surface_form_is_preserved(self):
        """Coalesced joiners get their own question text back, not the
        canonical in-flight phrasing."""
        target = ScriptedTarget(delay=0.05)

        async def main():
            async with AsyncAnswerer(target) as answerer:
                return await asyncio.gather(
                    answerer.answer("what is X ?"),
                    answerer.answer("What  is  X?"),
                )

        first, second = run(main())
        assert normalized_key("what is X ?") == normalized_key("What  is  X?")
        assert first.question == "what is X ?"
        assert second.question == "What  is  X?"
        assert first.values == second.values


class TestCoalescing:
    def test_identical_questions_cost_one_evaluation(self):
        target = ScriptedTarget(delay=0.02)

        async def main():
            async with AsyncAnswerer(target, ServeConfig(workers=1)) as answerer:
                results = await asyncio.gather(
                    *(answerer.answer("who is the mayor?") for _ in range(5))
                )
                return results, answerer.snapshot()

        results, stats = run(main())
        assert len({r.value for r in results}) == 1
        assert stats["coalesced"] == 4
        assert stats["evaluated"] == 1
        assert target.calls == [["who is the mayor?"]]

    def test_distinct_questions_form_one_micro_batch(self):
        target = ScriptedTarget()
        questions = [f"question number {n} ?" for n in range(8)]

        async def main():
            config = ServeConfig(workers=1, max_batch=8)
            async with AsyncAnswerer(target, config) as answerer:
                await answerer.answer_many(questions)
                return answerer.snapshot()

        stats = run(main())
        assert stats["batches"] == 1
        assert stats["max_batch_seen"] == 8
        assert [len(call) for call in target.calls] == [8]

    def test_coalesce_off_evaluates_every_request(self):
        target = ScriptedTarget()

        async def main():
            config = ServeConfig(workers=1, coalesce=False, max_batch=4)
            async with AsyncAnswerer(target, config) as answerer:
                await asyncio.gather(
                    *(answerer.answer("same question ?") for _ in range(4))
                )
                return answerer.snapshot()

        stats = run(main())
        assert stats["coalesced"] == 0
        assert stats["evaluated"] == 4


class TestAdmissionControl:
    def test_overload_raises_deterministically(self):
        target = ScriptedTarget(delay=0.05)
        questions = [f"distinct {n} ?" for n in range(6)]

        async def main():
            config = ServeConfig(workers=1, max_batch=1, max_pending=2)
            async with AsyncAnswerer(target, config) as answerer:
                outcomes = await asyncio.gather(
                    *(answerer.answer(q) for q in questions), return_exceptions=True
                )
                return outcomes, answerer.snapshot()

        outcomes, stats = run(main())
        rejected = [o for o in outcomes if isinstance(o, OverloadedError)]
        served = [o for o in outcomes if isinstance(o, AnswerResult)]
        assert len(rejected) == 4 and len(served) == 2
        assert stats["rejected"] == 4
        assert "queue full" in str(rejected[0])

    def test_coalesced_joiners_are_never_rejected(self):
        """Duplicates of an in-flight question are free: they must be
        admitted even when the queue is at capacity."""
        target = ScriptedTarget(delay=0.05)

        async def main():
            config = ServeConfig(workers=1, max_batch=1, max_pending=1)
            async with AsyncAnswerer(target, config) as answerer:
                return await asyncio.gather(
                    *(answerer.answer("the hot question ?") for _ in range(5))
                )

        results = run(main())
        assert len(results) == 5
        assert len({r.value for r in results}) == 1

    def test_oversized_batch_is_rejected_before_enqueueing(self):
        """A client batch that cannot fit the remaining capacity sheds load
        up front: nothing is enqueued, nothing is evaluated."""
        target = ScriptedTarget()
        questions = [f"distinct {n} ?" for n in range(5)]

        async def main():
            config = ServeConfig(workers=1, max_batch=1, max_pending=2)
            async with AsyncAnswerer(target, config) as answerer:
                with pytest.raises(OverloadedError, match="slots are free"):
                    await answerer.answer_many(questions)
                return answerer.snapshot()

        stats = run(main())
        assert stats["rejected"] == 5
        assert stats["evaluated"] == 0 and stats["pending"] == 0
        assert target.calls == []


class TestFreshness:
    def test_midflight_invalidation_forces_reevaluation(self):
        """A result computed before an invalidation is never delivered
        after it: the batch re-evaluates against the mutated target."""
        target = ScriptedTarget(value="old", delay=0.2)

        async def main():
            async with AsyncAnswerer(target, ServeConfig(workers=1)) as answerer:
                task = asyncio.ensure_future(answerer.answer("the question ?"))
                loop = asyncio.get_running_loop()
                await loop.run_in_executor(None, target.started.wait)
                target.value = "new"  # the "KB edit"
                target.delay = 0.0
                answerer.invalidate()
                result = await task
                return result, answerer.snapshot()

        result, stats = run(main())
        assert result.value == "new"
        assert stats["stale_retries"] >= 1
        assert stats["invalidations"] == 1

    def test_invalidate_is_threadsafe(self):
        target = ScriptedTarget(value="old", delay=0.2)

        async def main():
            async with AsyncAnswerer(target, ServeConfig(workers=1)) as answerer:
                task = asyncio.ensure_future(answerer.answer("the question ?"))
                loop = asyncio.get_running_loop()

                def mutate_from_thread():
                    target.started.wait()
                    target.value = "new"
                    target.delay = 0.0
                    answerer.invalidate()  # cross-thread entry point

                await loop.run_in_executor(None, mutate_from_thread)
                return await task

        assert run(main()).value == "new"

    def test_sustained_invalidation_degrades_to_bounded_staleness(self):
        """A writer bumping the epoch faster than one evaluation completes
        must not livelock the batch: after max_stale_retries the freshest
        attempt is delivered and counted."""

        class SelfInvalidatingTarget(ScriptedTarget):
            answerer: AsyncAnswerer

            def answer_many(self, questions):
                results = super().answer_many(questions)
                self.answerer.invalidate()  # a concurrent write, every time
                return results

        target = SelfInvalidatingTarget(value="v")

        async def main():
            config = ServeConfig(workers=1, max_stale_retries=2)
            async with AsyncAnswerer(target, config) as answerer:
                target.answerer = answerer
                result = await answerer.answer("the question ?")
                return result, answerer.snapshot()

        result, stats = run(main())
        assert result.value == "v"  # resolved despite perpetual invalidation
        assert stats["stale_retries"] == 2
        assert stats["stale_delivered"] == 1

    def test_apply_quiesces_writes(self):
        """apply() runs the mutation with zero evaluations in flight and
        subsequent requests see its effect."""
        target = ScriptedTarget(value="old", delay=0.01)
        observed_active: list[int] = []

        def mutation():
            observed_active.append(target.active)
            target.value = "new"
            return "changed"

        async def main():
            config = ServeConfig(workers=2, max_batch=2)
            async with AsyncAnswerer(target, config) as answerer:
                warm = asyncio.gather(
                    *(answerer.answer(f"warm {n} ?") for n in range(6))
                )
                outcome = await answerer.apply(mutation)
                after = await answerer.answer("after the write ?")
                await warm
                return outcome, after, answerer.snapshot()

        outcome, after, stats = run(main())
        assert outcome == "changed"
        assert observed_active == [0]  # write saw a fully drained executor
        assert after.value == "new"
        assert stats["applies"] == 1
        assert stats["invalidations"] >= 1


class TestLifecycle:
    def test_answer_before_start_and_after_stop_fail_cleanly(self):
        target = ScriptedTarget()
        answerer = AsyncAnswerer(target)

        async def before():
            with pytest.raises(RuntimeError, match="not running"):
                await answerer.answer("q ?")

        run(before())

        async def after():
            async with AsyncAnswerer(target) as a:
                await a.answer("q ?")
            with pytest.raises(RuntimeError, match="not running"):
                await a.answer("q ?")

        run(after())

    def test_stop_fails_queued_requests_deterministically(self):
        target = ScriptedTarget(delay=0.1)
        questions = [f"distinct {n} ?" for n in range(3)]

        async def main():
            config = ServeConfig(workers=1, max_batch=1)
            answerer = AsyncAnswerer(target, config)
            await answerer.start()
            tasks = [asyncio.ensure_future(answerer.answer(q)) for q in questions]
            await asyncio.sleep(0.02)  # first batch in flight, rest queued
            await answerer.stop()
            return await asyncio.gather(*tasks, return_exceptions=True)

        outcomes = run(main())
        served = [o for o in outcomes if isinstance(o, AnswerResult)]
        stopped = [o for o in outcomes if isinstance(o, RuntimeError)]
        assert len(served) >= 1  # the in-flight batch completed
        assert all("stopped" in str(o) for o in stopped)
        assert len(served) + len(stopped) == 3


class TestLoadGenerator:
    def test_stream_is_deterministic_and_duplicate_rated(self):
        pool = [f"q {n} ?" for n in range(20)]
        spec = LoadSpec(requests=200, concurrency=4, duplicate_rate=0.5, hot_set=4, seed=11)
        first = build_request_stream(pool, spec)
        second = build_request_stream(pool, spec)
        assert first == second
        assert len(first) == 200
        hot = set(pool[:4])
        hot_fraction = sum(1 for q in first if q in hot) / len(first)
        assert 0.35 < hot_fraction < 0.75  # 0.5 target + cold-cursor overlap

    def test_zero_duplicate_rate_cycles_the_pool(self):
        pool = [f"q {n} ?" for n in range(5)]
        spec = LoadSpec(requests=10, concurrency=2, duplicate_rate=0.0)
        assert build_request_stream(pool, spec) == pool + pool

    def test_coalescing_reduces_evaluations_at_high_duplicate_rate(self, kbqa_fb, suite):
        """Counter-based (not timing-based) form of the QPS benchmark's
        claim: with duplicates in flight, coalescing-on evaluates fewer
        questions than coalescing-off for the same stream."""
        from repro.serve.loadgen import run_load_cell

        pool = [q.question for q in suite.benchmark("qald3").bfqs()]
        spec = LoadSpec(requests=128, concurrency=32, duplicate_rate=0.9, seed=5)
        on = run_load_cell(kbqa_fb.answerer, pool, spec, coalesce=True, max_batch=4)
        off = run_load_cell(kbqa_fb.answerer, pool, spec, coalesce=False, max_batch=4)
        assert on["completed"] == off["completed"] == 128
        assert on["evaluated"] < off["evaluated"]
        assert on["coalesced"] > 0


class TestProcessBackendIntegration:
    """The scripted-target patterns above, crossed with the process backend
    against a *real* trained system (see tests/test_exec_concurrency.py for
    the deterministic cross-process timing cases)."""

    @pytest.fixture()
    def live_process_system(self, suite):
        """A trained system over a private KB copy, safe to mutate."""
        from repro.data.compile import compile_freebase_like
        from repro.core.system import KBQA

        kb = compile_freebase_like(suite.world)
        system = KBQA.train(kb, suite.corpus, suite.conceptualizer)
        yield system
        system.close()

    def test_facts_applied_through_process_pool_are_served_fresh(
        self, suite, live_process_system
    ):
        """apply(delete_fact) on a process-backed answerer: the next request
        evaluates on a refrozen snapshot without the deleted edge, and the
        restore brings the original answer back — all cross-process."""
        system = live_process_system
        question = cvt = partner = None
        for entity in suite.world.of_type("person"):
            spouses = system.kb.store.objects(entity.node, "marriage")
            if spouses:
                cvt = next(iter(spouses))
                partner = next(iter(system.kb.store.objects(cvt, "person")))
                question = f"who is the spouse of {entity.name}?"
                if system.answer(question).answered:
                    break
        assert question is not None, "no answerable spouse question in the suite"

        async def main():
            config = ServeConfig(executor="process", workers=1, max_batch=4)
            async with AsyncAnswerer(system, config) as answerer:
                before = await answerer.answer(question)
                deleted = await answerer.apply(
                    lambda: system.delete_fact(cvt, "person", partner)
                )
                after = await answerer.answer(question)
                restored_fact = await answerer.apply(
                    lambda: system.add_fact(cvt, "person", partner)
                )
                restored = await answerer.answer(question)
                return before, deleted, after, restored_fact, restored, answerer.snapshot()

        before, deleted, after, restored_fact, restored, stats = run(main())
        assert before.answered and deleted is True and restored_fact is True
        assert before.value not in after.values
        assert restored.value == before.value
        assert stats["executor"] == "process"
        assert stats["applies"] == 2
        assert stats["snapshot_refreezes"] >= 3

    def test_process_stats_surface_executor_fields(self, kbqa_fb):
        async def main():
            async with AsyncAnswerer(
                kbqa_fb, ServeConfig(executor="process", workers=2)
            ) as answerer:
                await answerer.answer("who is anyone ?")
                return answerer.snapshot()

        stats = run(main())
        assert stats["executor"] == "process"
        assert stats["workers"] == 2
        assert stats["snapshot_refreezes"] >= 1


class TestOpenLoopLoadGenerator:
    def test_open_loop_cell_reports_latency_percentiles(self, kbqa_fb, suite):
        from repro.serve.loadgen import OpenLoadSpec, run_open_load_cell

        pool = [q.question for q in suite.benchmark("qald3").bfqs()]
        spec = OpenLoadSpec(rate_qps=4000.0, requests=64, duplicate_rate=0.5, seed=3)
        cell = run_open_load_cell(kbqa_fb.answerer, pool, spec, max_batch=8, workers=2)
        assert cell["requests"] == 64
        assert cell["completed"] + cell["rejected"] == 64
        assert cell["p50_ms"] is not None
        assert cell["p99_ms"] >= cell["p50_ms"]
        assert cell["workers"] == 2

    def test_worker_counts_clamp_and_follow_env(self, kbqa_fb, suite, monkeypatch):
        """Satellite contract: a nonsense KBQA_WORKERS (0) still yields a
        working 1-worker pool, and a sane value is honored."""
        from repro.serve.loadgen import run_load_cell

        pool = [q.question for q in suite.benchmark("qald3").bfqs()]
        spec = LoadSpec(requests=16, concurrency=4, duplicate_rate=0.0, seed=2)
        monkeypatch.setenv("KBQA_WORKERS", "0")
        cell = run_load_cell(kbqa_fb.answerer, pool, spec)
        assert cell["workers"] == 1
        assert cell["completed"] == 16
        monkeypatch.setenv("KBQA_WORKERS", "3")
        cell = run_load_cell(kbqa_fb.answerer, pool, spec)
        assert cell["workers"] == 3

    def test_latency_percentiles_empty_safe(self):
        from repro.serve.loadgen import latency_percentiles

        empty = latency_percentiles([])
        assert empty == {"p50_ms": None, "p95_ms": None, "p99_ms": None, "max_ms": None}
        single = latency_percentiles([5.0])  # statistics.quantiles needs >= 2
        assert single == {"p50_ms": 5.0, "p95_ms": 5.0, "p99_ms": 5.0, "max_ms": 5.0}
        sample = latency_percentiles([1.0, 2.0, 3.0, 4.0])
        assert sample["p50_ms"] == 2.5
        assert sample["max_ms"] == 4.0

    def test_single_request_open_loop_cell(self, kbqa_fb, suite):
        """A one-arrival cell (the minimum OpenLoadSpec allows) must return
        a well-formed cell, not a StatisticsError."""
        from repro.serve.loadgen import OpenLoadSpec, run_open_load_cell

        pool = [q.question for q in suite.benchmark("qald3").bfqs()]
        cell = run_open_load_cell(
            kbqa_fb.answerer, pool, OpenLoadSpec(rate_qps=100.0, requests=1)
        )
        assert cell["completed"] == 1
        assert cell["p50_ms"] == cell["p99_ms"] is not None
