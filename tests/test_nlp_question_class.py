"""Tests for the UIUC question classifier and type compatibility."""

import pytest

from repro.nlp.question_class import (
    AnswerType,
    answer_types_compatible,
    classify_question,
)


class TestClassifyQuestion:
    @pytest.mark.parametrize("question,expected", [
        ("When was Barack Obama born?", AnswerType.DATE),
        ("Who is the wife of Barack Obama?", AnswerType.HUMAN),
        ("Where was Barack Obama born?", AnswerType.LOCATION),
        ("How many people are there in Honolulu?", AnswerType.NUMERIC),
        ("How much money does apple make?", AnswerType.NUMERIC),
        ("How tall is mount kelvaro?", AnswerType.NUMERIC),
        ("What is the population of Honolulu?", AnswerType.NUMERIC),
        ("What is the capital of aurelia?", AnswerType.LOCATION),
        ("What is the birthday of the ceo?", AnswerType.DATE),
        ("Which city was he born in?", AnswerType.LOCATION),
        ("What is the currency of aurelia?", AnswerType.ENTITY),
        ("Why is the sky blue?", AnswerType.DESCRIPTION),
        ("Is Barack Obama married to Michelle?", AnswerType.DESCRIPTION),
        ("What instrument does she play?", AnswerType.ENTITY),
        ("Who wrote the silent garden?", AnswerType.HUMAN),
    ])
    def test_classification(self, question, expected):
        assert classify_question(question) == expected

    def test_empty_question(self):
        assert classify_question("") == AnswerType.UNKNOWN

    def test_head_word_beats_generic_what(self):
        # 'what' defaults to ENTITY, but 'population' forces NUM.
        assert classify_question("what population does it have?") == AnswerType.NUMERIC

    def test_how_without_quantifier(self):
        assert classify_question("how do i fix this?") == AnswerType.DESCRIPTION


class TestCompatibility:
    def test_exact_match(self):
        assert answer_types_compatible(AnswerType.DATE, AnswerType.DATE)

    def test_date_satisfies_numeric(self):
        assert answer_types_compatible(AnswerType.NUMERIC, AnswerType.DATE)

    def test_numeric_does_not_satisfy_date(self):
        assert not answer_types_compatible(AnswerType.DATE, AnswerType.NUMERIC)

    def test_human_incompatible_with_date(self):
        assert not answer_types_compatible(AnswerType.DATE, AnswerType.HUMAN)

    def test_unknown_question_accepts_anything(self):
        assert answer_types_compatible(AnswerType.UNKNOWN, AnswerType.HUMAN)

    def test_unknown_value_accepted(self):
        assert answer_types_compatible(AnswerType.HUMAN, AnswerType.UNKNOWN)

    def test_entity_accepts_human_and_location(self):
        assert answer_types_compatible(AnswerType.ENTITY, AnswerType.HUMAN)
        assert answer_types_compatible(AnswerType.ENTITY, AnswerType.LOCATION)

    def test_location_rejects_numeric(self):
        assert not answer_types_compatible(AnswerType.LOCATION, AnswerType.NUMERIC)

    def test_example2_trap_filtered(self):
        """Example 2: a birthday question must reject a profession value."""
        question_type = classify_question("When was Barack Obama born?")
        profession_type = AnswerType.ENTITY  # profession predicate category
        assert not answer_types_compatible(question_type, profession_type)
