"""Tests for the EM estimator (Sec 4.2-4.3)."""

import math

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.em import EMConfig, initialize_theta, run_em


def obs(*cands):
    """Shorthand: an observation is a list of (template, path, f) tuples."""
    return list(cands)


class TestInitialization:
    def test_uniform_over_cooccurring_paths(self):
        observations = [obs((0, 0, 0.5), (0, 1, 0.5)), obs((0, 0, 1.0))]
        theta = initialize_theta(observations)
        assert theta[0][0] == pytest.approx(0.5)
        assert theta[0][1] == pytest.approx(0.5)

    def test_zero_f_candidates_excluded(self):
        observations = [obs((0, 0, 1.0), (0, 1, 0.0))]
        theta = initialize_theta(observations)
        assert theta == {0: {0: 1.0}}

    def test_empty(self):
        assert initialize_theta([]) == {}


class TestRunEM:
    def test_unambiguous_template_converges_to_one(self):
        # Template 0 always co-occurs with path 0 only.
        observations = [obs((0, 0, 1.0))] * 10
        result = run_em(observations)
        assert result.theta[0][0] == pytest.approx(1.0)

    def test_majority_path_wins(self):
        """'how many people in $city' maps to population in most instances:
        EM should put most mass there (the paper's core intuition)."""
        observations = (
            [obs((0, 0, 1.0), (0, 1, 1.0))] * 2  # ambiguous instances
            + [obs((0, 0, 1.0))] * 8  # instances explained only by path 0
        )
        result = run_em(observations)
        assert result.theta[0][0] > 0.85
        assert result.theta[0][0] > result.theta[0].get(1, 0.0)

    def test_log_likelihood_monotone(self):
        observations = (
            [obs((0, 0, 0.5), (0, 1, 0.25), (1, 1, 0.25))] * 5
            + [obs((0, 0, 1.0))] * 3
            + [obs((1, 1, 0.7), (1, 0, 0.1))] * 4
        )
        result = run_em(observations, EMConfig(max_iterations=30, tolerance=0.0))
        lls = result.log_likelihood
        assert len(lls) > 2
        for earlier, later in zip(lls, lls[1:]):
            assert later >= earlier - 1e-9, "EM log-likelihood must not decrease"

    def test_theta_rows_normalized(self):
        observations = [
            obs((0, 0, 0.3), (0, 1, 0.7)),
            obs((0, 1, 1.0)),
            obs((1, 0, 0.4), (1, 2, 0.6)),
        ]
        result = run_em(observations)
        for row in result.theta.values():
            assert sum(row.values()) == pytest.approx(1.0)

    def test_convergence_stops_early(self):
        observations = [obs((0, 0, 1.0))] * 5
        result = run_em(observations, EMConfig(max_iterations=50, tolerance=1e-7))
        assert result.iterations < 50

    def test_f_weights_shift_responsibility(self):
        """Higher f (e.g. sharper P(v|e,p)) pulls mass toward that path."""
        observations = [obs((0, 0, 1.0), (0, 1, 0.1))] * 6
        result = run_em(observations)
        assert result.theta[0][0] > result.theta[0][1]

    def test_template_support_sums_to_observations(self):
        observations = [obs((0, 0, 1.0))] * 4 + [obs((1, 1, 1.0))] * 6
        result = run_em(observations)
        total_support = sum(result.template_support.values())
        assert total_support == pytest.approx(10.0)

    def test_unseen_observation_ignored(self):
        # an observation whose candidates all have f=0 contributes nothing
        observations = [obs((0, 0, 0.0)), obs((0, 1, 1.0))]
        result = run_em(observations)
        assert result.theta[0] == {1: pytest.approx(1.0)}

    def test_empty_observations(self):
        result = run_em([])
        assert result.theta == {}
        assert result.iterations == 0


class TestEMProperties:
    @settings(max_examples=30, deadline=None)
    @given(
        st.lists(
            st.lists(
                st.tuples(
                    st.integers(0, 3),
                    st.integers(0, 3),
                    st.floats(0.01, 1.0),
                ),
                min_size=1,
                max_size=4,
            ),
            min_size=1,
            max_size=25,
        )
    )
    def test_invariants_on_random_instances(self, observations):
        result = run_em(observations, EMConfig(max_iterations=15, tolerance=0.0))
        # rows normalized
        for row in result.theta.values():
            assert sum(row.values()) == pytest.approx(1.0)
            assert all(0.0 <= p <= 1.0 + 1e-12 for p in row.values())
        # monotone log-likelihood
        for earlier, later in zip(result.log_likelihood, result.log_likelihood[1:]):
            assert later >= earlier - 1e-6
        # finite
        assert all(math.isfinite(ll) for ll in result.log_likelihood)
